"""Pluggable search strategies for the autotuner, selected by name.

The registry mirrors :mod:`repro.api.strategies`: strategies are instances
registered under a name, looked up by ``hexcc tune --strategy`` and the
:func:`repro.tuning.tune` entry point.  Three strategies ship:

* ``grid`` — exhaustive enumeration of the candidate space; when the budget
  is smaller than the space, an evenly-strided deterministic subsample;
* ``random`` — seeded sampling without replacement (``random.Random(seed)``,
  so identical seed + budget replays the identical trial sequence);
* ``hillclimb`` — coordinate-descent: start from the model-selected
  configuration (the §3.7 answer), evaluate the axis-aligned neighbours of
  the incumbent, move to the best improvement, repeat until the budget runs
  out or a local optimum is reached.

A strategy receives an ``evaluate`` callback taking a *batch* of candidates;
batches are fanned across worker processes by the tuner, so strategies
should propose as many independent candidates per round as they can.
Every strategy is deterministic for a fixed ``(seed, budget)`` — the
property the tuning database's byte-identical-entry test pins.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence

from repro.tuning.objectives import TuningTrial
from repro.tuning.space import Candidate, CandidateSpace

#: Signature of the batch-evaluation callback handed to strategies.
Evaluator = Callable[[Sequence[Candidate]], list[TuningTrial]]


class SearchStrategy(ABC):
    """One way of spending an evaluation budget on a candidate space."""

    name: str = ""

    @abstractmethod
    def search(
        self,
        space: CandidateSpace,
        evaluate: Evaluator,
        budget: int,
        seed: int,
        start: Candidate | None = None,
    ) -> list[TuningTrial]:
        """Run the search and return every trial, in evaluation order.

        ``start`` is the model-selected configuration snapped to the space
        (may be ``None`` when the space is empty); strategies that exploit a
        starting point (hill climbing) begin there.
        """


class GridSearch(SearchStrategy):
    """Exhaustive sweep; an evenly-strided subsample when over budget."""

    name = "grid"

    def search(self, space, evaluate, budget, seed, start=None):
        candidates = space.enumerate()
        if not candidates or budget <= 0:
            return []
        if len(candidates) > budget:
            # Deterministic coverage of the whole space: every budget-th
            # point of the enumeration (which varies the innermost axes
            # fastest, so the stride samples all axes).
            stride = len(candidates) / budget
            candidates = [candidates[int(i * stride)] for i in range(budget)]
        return evaluate(candidates)


class RandomSearch(SearchStrategy):
    """Seeded uniform sampling of the space, without replacement."""

    name = "random"

    def search(self, space, evaluate, budget, seed, start=None):
        candidates = space.enumerate()
        if not candidates or budget <= 0:
            return []
        rng = random.Random(seed)
        count = min(budget, len(candidates))
        return evaluate(rng.sample(candidates, count))


class HillClimbSearch(SearchStrategy):
    """Coordinate-descent from the model-selected configuration.

    Each round evaluates all unvisited axis-aligned neighbours of the
    incumbent in one parallel batch, then moves to the best strictly
    improving one.  The walk stops at a local optimum or when the budget is
    exhausted.  Ties break on the enumeration order of the space, keeping
    the walk deterministic; ``seed`` selects the starting point only when no
    model-selected start is available.
    """

    name = "hillclimb"

    def search(self, space, evaluate, budget, seed, start=None):
        candidates = space.enumerate()
        if not candidates or budget <= 0:
            return []
        if start is None:
            start = candidates[random.Random(seed).randrange(len(candidates))]
        trials: list[TuningTrial] = []
        visited: set[Candidate] = set()

        def run_batch(batch: list[Candidate]) -> list[TuningTrial]:
            remaining = budget - len(trials)
            batch = [c for c in batch if c not in visited][:remaining]
            if not batch:
                return []
            visited.update(batch)
            new = evaluate(batch)
            trials.extend(new)
            return new

        first = run_batch([start])
        if not first:
            return trials
        incumbent = first[0]
        while len(trials) < budget:
            ranked = sorted(
                run_batch(space.neighbours(incumbent.candidate)),
                key=lambda trial: trial.score,
            )
            if not ranked or ranked[0].score >= incumbent.score:
                break  # local optimum (or nothing left to try)
            incumbent = ranked[0]
        return trials


_REGISTRY: dict[str, SearchStrategy] = {}


def register_search_strategy(
    strategy: SearchStrategy, replace: bool = False
) -> SearchStrategy:
    """Add a search strategy to the registry (keyed by ``strategy.name``)."""
    if not strategy.name:
        raise ValueError("search strategies must set a non-empty name")
    if strategy.name in _REGISTRY and not replace:
        raise ValueError(f"search strategy {strategy.name!r} is already registered")
    _REGISTRY[strategy.name] = strategy
    return strategy


def get_search_strategy(name: str) -> SearchStrategy:
    """Look a search strategy up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown search strategy {name!r}; known: {list_search_strategies()}"
        ) from None


def list_search_strategies() -> list[str]:
    """Names of the registered search strategies, sorted."""
    return sorted(_REGISTRY)


register_search_strategy(GridSearch())
register_search_strategy(RandomSearch())
register_search_strategy(HillClimbSearch())
