"""``repro.tuning`` — the empirical autotuning subsystem.

The paper picks hybrid tile sizes with the closed-form load-to-compute model
of Section 3.7; its strongest comparison points (Patus) win on some stencils
by *measuring* instead of modelling.  This package closes that loop on top
of the staged pipeline:

* :class:`~repro.tuning.space.CandidateSpace` — the legal tile-size /
  launch-config grid, derived from the §3.7 constraints (statement
  multiplicity, hexagon convexity, full-warp floor, shared-memory fit);
* search strategies (``grid`` / ``random`` / ``hillclimb``) behind a
  registry mirroring :mod:`repro.api.strategies`;
* objectives (``model`` / ``simulate`` / ``counters``) scoring candidates
  through :class:`repro.api.Session` runs that share the cached pipeline
  prefix, fanned across processes by :mod:`repro.engine`;
* :class:`~repro.tuning.db.TuningDatabase` — a schema-versioned, atomically
  written JSON database of best known configurations, keyed by (program
  content digest, device, strategy), which ``Session(... ).run(tuned=True)``
  and ``hexcc compile --tuned`` apply transparently.
"""

from repro.tuning.db import (
    TuningDatabase,
    baseline_db_path,
    default_db_path,
    resolve_db_path,
)
from repro.tuning.objectives import (
    EvaluationJob,
    TuningTrial,
    evaluate_candidate,
    list_objectives,
    register_objective,
)
from repro.tuning.space import Candidate, CandidateSpace
from repro.tuning.strategies import (
    SearchStrategy,
    get_search_strategy,
    list_search_strategies,
    register_search_strategy,
)
from repro.tuning.tuner import TuningResult, tune

__all__ = [
    "Candidate",
    "CandidateSpace",
    "EvaluationJob",
    "SearchStrategy",
    "TuningDatabase",
    "TuningResult",
    "TuningTrial",
    "baseline_db_path",
    "default_db_path",
    "evaluate_candidate",
    "get_search_strategy",
    "list_objectives",
    "list_search_strategies",
    "register_objective",
    "register_search_strategy",
    "resolve_db_path",
    "tune",
]
