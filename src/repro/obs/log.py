"""Structured event log, the flight recorder, and crash reports.

The third telemetry plane next to spans and metrics: a stream of discrete,
JSON-safe **events** (``{ts, name, level, span_id, trace_id, fields}``).
Two consumers share one record type:

* the **flight recorder** — a bounded in-memory ring of the last N events.
  One process-global instance is always on (even with tracing disabled, a
  deque append costs microseconds), so a crash report always has context;
  an enabled :class:`~repro.obs.Telemetry` gets its own
  :class:`EventLog` and engine workers ship their event tails back to the
  parent next to their spans and metrics.
* an optional **JSON-lines sink** — pass ``sink=`` to stream every event
  to a file as it happens (one JSON object per line, append-only).

**Crash reports**: when a pipeline pass, the tuner loop or an engine worker
raises, :func:`write_crash_report` persists a post-mortem document — the
exception and traceback, the last events, the open span stack, a metrics
snapshot, and the artifact stage keys computed so far — under
``$HEXCC_CACHE_DIR/crash/`` and returns its path (the CLI prints it).
Reports are retained newest-first up to ``$HEXCC_CRASH_KEEP`` (default
{DEFAULT_CRASH_KEEP}); writing is best-effort and never masks the original
exception.
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Mapping
from typing import Any

#: Crash-report document identity.
CRASH_KIND = "hexcc-crash"
CRASH_SCHEMA_VERSION = 1

#: Retention knobs (see the README's Observability section).
FLIGHT_RECORDER_SIZE_ENV = "HEXCC_FLIGHT_RECORDER_SIZE"
DEFAULT_FLIGHT_RECORDER_SIZE = 256
CRASH_KEEP_ENV = "HEXCC_CRASH_KEEP"
DEFAULT_CRASH_KEEP = 20
#: Set non-empty to suppress crash-report files entirely.
CRASH_DISABLE_ENV = "HEXCC_CRASH_DISABLE"


def _json_safe(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass(frozen=True)
class Event:
    """One structured log record (immutable; picklable across processes)."""

    ts_ns: int  # wall-clock nanoseconds
    name: str
    level: str  # "info" | "warn" | "error"
    pid: int
    span_id: str | None = None
    trace_id: str | None = None
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "ts_ns": self.ts_ns,
            "name": self.name,
            "level": self.level,
            "pid": self.pid,
        }
        if self.span_id is not None:
            record["span_id"] = self.span_id
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.fields:
            record["fields"] = {k: _json_safe(v) for k, v in self.fields.items()}
        return record


class NullEventLog:
    """The disabled log: every operation is a no-op."""

    enabled = False

    def emit(
        self,
        name: str,
        level: str = "info",
        span_id: str | None = None,
        trace_id: str | None = None,
        **fields: Any,
    ) -> None:
        pass

    def extend(self, events: Iterable[Event]) -> None:
        pass

    def tail(self) -> list[Event]:
        return []

    def clear(self) -> None:
        pass


def flight_recorder_size() -> int:
    """The flight-recorder capacity (``$HEXCC_FLIGHT_RECORDER_SIZE``)."""
    raw = os.environ.get(FLIGHT_RECORDER_SIZE_ENV)
    try:
        size = int(raw) if raw else DEFAULT_FLIGHT_RECORDER_SIZE
    except ValueError:
        return DEFAULT_FLIGHT_RECORDER_SIZE
    return max(1, size)


class EventLog(NullEventLog):
    """A bounded in-memory event ring with an optional JSONL file sink.

    Thread-safe (one lock around the ring and the sink); the sink is opened
    lazily on the first emit and every record is flushed, so a crash loses
    at most the event being written.  Sink I/O errors disable the sink for
    the rest of the log's life rather than failing the instrumented code.
    """

    enabled = True

    def __init__(
        self, capacity: int | None = None, sink: str | Path | None = None
    ) -> None:
        self._lock = threading.Lock()
        self._tail: deque[Event] = deque(
            maxlen=capacity if capacity is not None else flight_recorder_size()
        )
        self._sink_path = Path(sink) if sink is not None else None
        self._sink_file: Any = None
        self._sink_broken = False

    @property
    def capacity(self) -> int:
        return self._tail.maxlen or 0

    def emit(
        self,
        name: str,
        level: str = "info",
        span_id: str | None = None,
        trace_id: str | None = None,
        **fields: Any,
    ) -> None:
        event = Event(
            ts_ns=time.time_ns(),
            name=name,
            level=level,
            pid=os.getpid(),
            span_id=span_id,
            trace_id=trace_id,
            fields=fields,
        )
        with self._lock:
            self._tail.append(event)
            self._write_sink(event)

    def extend(self, events: Iterable[Event]) -> None:
        """Adopt events recorded elsewhere (typically a worker's tail)."""
        with self._lock:
            for event in events:
                self._tail.append(event)
                self._write_sink(event)

    def tail(self) -> list[Event]:
        """The retained events, oldest first (bounded by the capacity)."""
        with self._lock:
            return list(self._tail)

    def clear(self) -> None:
        with self._lock:
            self._tail.clear()

    def _write_sink(self, event: Event) -> None:
        if self._sink_path is None or self._sink_broken:
            return
        try:
            if self._sink_file is None:
                self._sink_path.parent.mkdir(parents=True, exist_ok=True)
                self._sink_file = open(self._sink_path, "a", encoding="utf-8")
            self._sink_file.write(json.dumps(event.to_json()) + "\n")
            self._sink_file.flush()
        except OSError:
            self._sink_broken = True


#: The always-on process-global flight recorder: disabled telemetry shares
#: it, so a crash report has a tail to dump even when nothing else records.
FLIGHT_RECORDER = EventLog()


def crash_report_dir() -> Path:
    """Where crash reports land: ``<cache dir>/crash``."""
    from repro.cache.disk import default_cache_dir

    return default_cache_dir() / "crash"


def crash_keep() -> int:
    """How many crash reports to retain (``$HEXCC_CRASH_KEEP``)."""
    raw = os.environ.get(CRASH_KEEP_ENV)
    try:
        keep = int(raw) if raw else DEFAULT_CRASH_KEEP
    except ValueError:
        return DEFAULT_CRASH_KEEP
    return max(1, keep)


def _prune_crash_reports(directory: Path, keep: int) -> None:
    reports = sorted(directory.glob("crash-*.json"))
    for stale in reports[: max(0, len(reports) - keep)]:
        try:
            stale.unlink()
        except OSError:
            pass


def write_crash_report(
    error: BaseException,
    *,
    context: Mapping[str, Any] | None = None,
    telemetry: Any = None,
    stage_keys: Mapping[str, str] | None = None,
) -> Path | None:
    """Persist a post-mortem document for ``error``; returns its path.

    ``telemetry`` defaults to the ambient one; its event tail, open span
    stack and metrics snapshot are embedded.  Returns ``None`` when crash
    reporting is disabled (``$HEXCC_CRASH_DISABLE``) or the report cannot
    be written — never raises, so the original exception stays primary.
    """
    if os.environ.get(CRASH_DISABLE_ENV):
        return None
    from repro import obs

    if telemetry is None:
        telemetry = obs.current()
    events = telemetry.events.tail() or FLIGHT_RECORDER.tail()
    document = {
        "kind": CRASH_KIND,
        "schema_version": CRASH_SCHEMA_VERSION,
        "ts_ns": time.time_ns(),
        "pid": os.getpid(),
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exception(
                type(error), error, error.__traceback__
            ),
        },
        "context": {k: _json_safe(v) for k, v in (context or {}).items()},
        "span_stack": [
            {"span_id": span_id, "name": name}
            for span_id, name in telemetry.recorder.open_spans()
        ],
        "trace_id": telemetry.recorder.trace_id,
        "events": [event.to_json() for event in events],
        "metrics": telemetry.metrics.snapshot(),
        "stage_keys": dict(stage_keys or {}),
    }
    try:
        directory = crash_report_dir()
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"crash-{time.time_ns()}-{os.getpid()}.json"
        path.write_text(json.dumps(document, indent=2) + "\n")
        _prune_crash_reports(directory, crash_keep())
    except OSError:
        return None
    return path


def attach_crash_report(error: BaseException, path: Path | None) -> None:
    """Remember the report path on the exception (the CLI prints it)."""
    if path is not None and not getattr(error, "crash_report_path", None):
        error.crash_report_path = str(path)  # type: ignore[attr-defined]
