"""Exporters: Chrome trace-event JSON and the metrics dump.

The trace format is the Trace Event Format consumed by Perfetto
(https://ui.perfetto.dev) and chrome://tracing: a ``traceEvents`` list of
complete-duration (``"ph": "X"``) events with microsecond timestamps, plus
``"M"`` metadata events naming each process.  Span ids and parent links ride
in each event's ``args`` so the structure survives the export (and the CI
trace-smoke job can check that every reference resolves, see
:mod:`repro.obs.validate`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import Any

from repro.obs.spans import Span

#: Top-level document keys (also checked by the validator).
TRACE_KIND = "hexcc-trace"
TRACE_SCHEMA_VERSION = 1


def chrome_trace(
    spans: Sequence[Span], metrics: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """Build a Chrome trace-event document from completed spans."""
    events: list[dict[str, Any]] = []
    main_pid = os.getpid()
    seen_pids: dict[int, None] = {}
    for span in spans:
        seen_pids.setdefault(span.pid, None)
    for pid in seen_pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": "hexcc" if pid == main_pid else f"hexcc worker {pid}"
                },
            }
        )
    for span in spans:
        args: dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        for key, value in span.attributes.items():
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        if span.error:
            args["error"] = span.error
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": span.start_ns / 1e3,  # microseconds
                "dur": span.duration_ns / 1e3,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            }
        )
    document: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "kind": TRACE_KIND,
            "schema_version": TRACE_SCHEMA_VERSION,
            "spans": len(spans),
            "processes": len(seen_pids),
        },
    }
    if metrics:
        document["metrics"] = dict(metrics)
    return document


def write_trace(
    path: str | Path,
    spans: Sequence[Span],
    metrics: Mapping[str, Any] | None = None,
) -> Path:
    """Serialise a Chrome trace to ``path``; returns the written path."""
    destination = Path(path)
    document = chrome_trace(spans, metrics)
    destination.write_text(json.dumps(document, indent=2) + "\n")
    return destination


def metrics_document(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """Wrap a registry snapshot in a versioned, self-identifying envelope."""
    return {
        "kind": "hexcc-metrics",
        "schema_version": 1,
        "metrics": dict(snapshot),
    }
