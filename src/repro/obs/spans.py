"""Hierarchical spans: the trace side of the telemetry subsystem.

A **span** is one timed, named region of work with attributes and a parent
link; the spans of one run form a tree (pipeline passes under the session
run, cache I/O under the pass that triggered it, worker roots under the
engine fan-out that spawned them).  Two recorder implementations share one
handle type:

* :class:`TraceRecorder` — retains completed spans for export
  (:mod:`repro.obs.export`) and aggregation (:mod:`repro.obs.profile`);
* :class:`NullRecorder` — the disabled default: the handle still measures
  its wall time with :func:`time.perf_counter_ns` (so instrumented code can
  read ``handle.duration_s`` as its single timing source), but nothing is
  retained and no ids are assigned.

Timing discipline: **durations** come from the monotonic
``perf_counter_ns`` clock; **timestamps** are wall-clock-anchored (each
recorder pins ``time_ns`` against ``perf_counter_ns`` once at construction)
so spans recorded by different processes land on one shared timeline in a
Chrome trace.

Cross-process propagation: a parent process exports a :class:`TraceContext`
(its current span id) into each engine worker; the worker records into its
own fresh recorder under a root span parented on that id, then ships the
completed spans back (they are plain picklable objects carrying the
worker's real pid/tid) for the parent to :meth:`TraceRecorder.adopt`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any

#: Process-global span sequence.  Ids are ``{pid:x}-{seq}``; the sequence
#: must be shared by every recorder in the process because pool workers are
#: reused — a fresh recorder per task with a private counter would mint
#: colliding ids under the same pid.
_SPAN_SEQ = itertools.count(1)


@dataclass(frozen=True)
class Span:
    """One completed span (immutable; picklable across processes)."""

    name: str
    span_id: str
    parent_id: str | None
    start_ns: int  # wall-clock-anchored nanoseconds (one timeline per host)
    duration_ns: int  # measured on the monotonic perf_counter clock
    pid: int
    tid: int
    attributes: Mapping[str, Any]
    error: str | None = None

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def describe(self) -> str:
        label = f"{self.name} {self.duration_ns / 1e6:.3f} ms"
        if self.error:
            label += f" ERROR({self.error})"
        return label


@dataclass(frozen=True)
class TraceContext:
    """What a worker process needs to link its spans into the parent trace."""

    parent_id: str | None


class SpanHandle:
    """Context manager measuring one span; shared by both recorders.

    ``duration_s`` is valid after ``__exit__`` even under the null recorder,
    so instrumented code has exactly one timing source whether or not a
    trace is being retained.
    """

    __slots__ = (
        "_recorder",
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "_start_perf_ns",
        "duration_s",
        "error",
    )

    def __init__(
        self,
        recorder: "NullRecorder",
        name: str,
        attributes: dict[str, Any],
        parent_id: str | None = None,
    ) -> None:
        self._recorder = recorder
        self.name = name
        self.attributes = attributes
        self.span_id: str | None = None
        self.parent_id = parent_id
        self._start_perf_ns = 0
        self.duration_s = 0.0
        self.error: str | None = None

    def set(self, **attributes: Any) -> "SpanHandle":
        """Attach attributes to the span while it is open."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "SpanHandle":
        self._recorder._enter(self)
        self._start_perf_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end_perf_ns = time.perf_counter_ns()
        self.duration_s = (end_perf_ns - self._start_perf_ns) / 1e9
        if exc_type is not None and self.error is None:
            self.error = f"{exc_type.__name__}: {exc}"
        self._recorder._exit(self, end_perf_ns)
        return False


class NullRecorder:
    """The disabled recorder: handles time themselves, nothing is retained."""

    enabled = False

    #: Disabled recorders have no trace identity; events logged against them
    #: carry ``trace_id=None``.
    trace_id: str | None = None

    def span(self, name: str, **attributes: Any) -> SpanHandle:
        return SpanHandle(self, name, attributes)

    def root_span(
        self, name: str, context: TraceContext | None = None, **attributes: Any
    ) -> SpanHandle:
        return SpanHandle(self, name, attributes)

    # The handle protocol: nothing to do when disabled.
    def _enter(self, handle: SpanHandle) -> None:
        pass

    def _exit(self, handle: SpanHandle, end_perf_ns: int) -> None:
        pass

    def current_span_id(self) -> str | None:
        return None

    def open_spans(self) -> list[tuple[str, str]]:
        """``(span_id, name)`` of every currently open span, outermost first."""
        return []

    def drain(self) -> list[Span]:
        return []

    def adopt(self, spans: list[Span], parent_id: str | None = None) -> None:
        pass


class TraceRecorder(NullRecorder):
    """Retains completed spans and maintains the open-span parent stack.

    The stack is per-recorder and not synchronised: one recorder serves one
    thread of control (engine workers are separate *processes*, each with
    its own recorder).  The recorded ``tid`` still distinguishes threads if
    a recorder is ever shared.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._pid = os.getpid()
        self._stack: list[tuple[str, str]] = []  # (span_id, name), innermost last
        # Pin the wall clock against the monotonic clock once, so every
        # span's timestamp is monotonic *and* comparable across processes.
        self._epoch_wall_ns = time.time_ns()
        self._epoch_perf_ns = time.perf_counter_ns()
        #: Identity of this trace (event-log records reference it); unique
        #: per recorder because the span sequence is process-global.
        self.trace_id: str | None = f"{self._pid:x}-t{next(_SPAN_SEQ)}"

    def span(self, name: str, **attributes: Any) -> SpanHandle:
        return SpanHandle(self, name, attributes)

    def root_span(
        self, name: str, context: TraceContext | None = None, **attributes: Any
    ) -> SpanHandle:
        """A span explicitly parented on a (possibly foreign) span id."""
        parent = context.parent_id if context is not None else None
        return SpanHandle(self, name, attributes, parent_id=parent)

    def current_span_id(self) -> str | None:
        """Id of the innermost open span (for exporting a TraceContext)."""
        return self._stack[-1][0] if self._stack else None

    def open_spans(self) -> list[tuple[str, str]]:
        """``(span_id, name)`` of every currently open span, outermost first."""
        return list(self._stack)

    def export_context(self) -> TraceContext:
        """The propagation context a worker process should record under."""
        return TraceContext(parent_id=self.current_span_id())

    def _enter(self, handle: SpanHandle) -> None:
        handle.span_id = f"{self._pid:x}-{next(_SPAN_SEQ)}"
        if handle.parent_id is None and self._stack:
            handle.parent_id = self._stack[-1][0]
        self._stack.append((handle.span_id, handle.name))

    def _exit(self, handle: SpanHandle, end_perf_ns: int) -> None:
        if self._stack and self._stack[-1][0] == handle.span_id:
            self._stack.pop()
        # round(), not int(): truncation loses 1 ns for ~2% of durations,
        # breaking duration_s == handle.duration_s exact round-trips.
        start_perf_ns = end_perf_ns - round(handle.duration_s * 1e9)
        self.spans.append(
            Span(
                name=handle.name,
                span_id=handle.span_id or "",
                parent_id=handle.parent_id,
                start_ns=self._epoch_wall_ns
                + (start_perf_ns - self._epoch_perf_ns),
                duration_ns=end_perf_ns - start_perf_ns,
                pid=self._pid,
                tid=threading.get_native_id(),
                attributes=dict(handle.attributes),
                error=handle.error,
            )
        )

    def drain(self) -> list[Span]:
        """Return every completed span and clear the buffer."""
        spans, self.spans = self.spans, []
        return spans

    def adopt(self, spans: list[Span], parent_id: str | None = None) -> None:
        """Attach spans recorded elsewhere (worker processes) to this trace.

        Foreign spans keep their own ids, pids and tids; roots among them
        (``parent_id is None``) are re-parented on ``parent_id`` so the
        worker subtrees hang off the span that spawned the fan-out.
        """
        for span in spans:
            if span.parent_id is None and parent_id is not None:
                span = Span(
                    name=span.name,
                    span_id=span.span_id,
                    parent_id=parent_id,
                    start_ns=span.start_ns,
                    duration_ns=span.duration_ns,
                    pid=span.pid,
                    tid=span.tid,
                    attributes=span.attributes,
                    error=span.error,
                )
            self.spans.append(span)
