"""Persistent run history: every compile/bench/tune run, on disk.

Telemetry from :mod:`repro.obs` evaporates when the process exits; the
history store makes the interesting part durable.  Records are one JSON
object per line, append-only, under ``$HEXCC_CACHE_DIR/history/runs.jsonl``
— append is a single ``O(1)`` write (POSIX appends of one small line are
effectively atomic), so recording never measurably taxes the run it
describes.  The file self-compacts: once it exceeds a size threshold the
newest ``$HEXCC_HISTORY_KEEP`` records (default {DEFAULT_HISTORY_KEEP})
are rewritten atomically via ``os.replace``.

Every record is schema-versioned and carries

* ``kind`` (``compile`` | ``bench`` | ``tune``) and an ``id`` — a short
  content digest used by ``hexcc perf diff`` selectors;
* the program digest, strategy and device that identify *what* ran;
* per-pass wall times with cache provenance (``computed`` vs ``memory`` /
  ``disk`` hits) — the raw material for regression attribution across
  history windows.

Set ``$HEXCC_HISTORY_DISABLE`` to suppress recording entirely (the
overhead gate and micro-benchmarks do).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

HISTORY_KIND = "hexcc-run"
HISTORY_SCHEMA_VERSION = 1

HISTORY_KEEP_ENV = "HEXCC_HISTORY_KEEP"
DEFAULT_HISTORY_KEEP = 2000
HISTORY_DISABLE_ENV = "HEXCC_HISTORY_DISABLE"

#: Compact once the JSONL file grows past this many bytes.
_COMPACT_THRESHOLD_BYTES = 8 * 1024 * 1024


def history_dir() -> Path:
    """Where history lives: ``<cache dir>/history``."""
    from repro.cache.disk import default_cache_dir

    return default_cache_dir() / "history"


def history_keep() -> int:
    """How many records compaction retains (``$HEXCC_HISTORY_KEEP``)."""
    raw = os.environ.get(HISTORY_KEEP_ENV)
    try:
        keep = int(raw) if raw else DEFAULT_HISTORY_KEEP
    except ValueError:
        return DEFAULT_HISTORY_KEEP
    return max(1, keep)


def history_enabled() -> bool:
    return not os.environ.get(HISTORY_DISABLE_ENV)


def _record_id(payload: Mapping[str, Any]) -> str:
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    )
    return digest.hexdigest()[:12]


@dataclass(frozen=True)
class RunRecord:
    """One history line, parsed.  ``data`` is the raw JSON document."""

    id: str
    kind: str  # "compile" | "bench" | "tune"
    ts_ns: int
    data: Mapping[str, Any]

    @property
    def when(self) -> str:
        return time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(self.ts_ns / 1e9)
        )

    def describe(self) -> str:
        data = self.data
        label = f"{self.id}  {self.when}  {self.kind:<7}"
        if self.kind == "compile":
            label += (
                f" {data.get('program', '?')}"
                f" [{data.get('strategy', '?')}]"
                f" {data.get('wall_ms', 0.0):.3f} ms"
            )
            sources = [
                str(p.get("source"))
                for p in data.get("passes", ())
                if isinstance(p, Mapping)
            ]
            hits = sum(1 for s in sources if s in ("memory", "disk"))
            if sources:
                label += f"  cache {hits}/{len(sources)}"
        elif self.kind == "bench":
            label += (
                f" suite={data.get('suite', '?')}"
                f" stencils={len(data.get('entries', ()))}"
            )
        elif self.kind == "tune":
            label += (
                f" {data.get('program', '?')}"
                f" trials={data.get('trials', '?')}"
                f" best={data.get('best_score', 0.0):.6g}"
            )
        return label


class RunHistory:
    """The append-only JSONL store (one instance per directory)."""

    def __init__(self, directory: Path | None = None) -> None:
        self.directory = directory if directory is not None else history_dir()
        self.path = self.directory / "runs.jsonl"

    def append(self, kind: str, data: Mapping[str, Any]) -> RunRecord | None:
        """Append one record; returns it (or ``None`` when disabled/failed)."""
        if not history_enabled():
            return None
        payload = dict(data)
        record = {
            "schema": HISTORY_KIND,
            "schema_version": HISTORY_SCHEMA_VERSION,
            "kind": kind,
            "ts_ns": time.time_ns(),
            "id": _record_id({"kind": kind, **payload}),
            **payload,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, default=str) + "\n")
            self._maybe_compact()
        except OSError:
            return None
        return RunRecord(
            id=record["id"], kind=kind, ts_ns=record["ts_ns"], data=record
        )

    def records(
        self, kind: str | None = None, limit: int | None = None
    ) -> list[RunRecord]:
        """All retained records, oldest first; malformed lines are skipped."""
        out: list[RunRecord] = []
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return out
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(data, dict) or data.get("schema") != HISTORY_KIND:
                continue
            if kind is not None and data.get("kind") != kind:
                continue
            out.append(
                RunRecord(
                    id=str(data.get("id", "")),
                    kind=str(data.get("kind", "")),
                    ts_ns=int(data.get("ts_ns", 0)),
                    data=data,
                )
            )
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out

    def select(self, selector: str, kind: str | None = None) -> RunRecord:
        """Resolve a CLI selector to one record.

        ``last`` (or ``last~N`` for the N-th most recent) and unambiguous
        record-id prefixes are accepted; raises ``LookupError`` otherwise.
        """
        records = self.records(kind=kind)
        if not records:
            raise LookupError("run history is empty")
        if selector == "last":
            return records[-1]
        if selector.startswith("last~"):
            try:
                back = int(selector[5:])
            except ValueError:
                raise LookupError(f"bad selector {selector!r}") from None
            if back < 0 or back >= len(records):
                raise LookupError(
                    f"{selector!r} is out of range ({len(records)} records)"
                )
            return records[-1 - back]
        matches = [r for r in records if r.id.startswith(selector)]
        if not matches:
            raise LookupError(f"no record matches {selector!r}")
        if len({r.id for r in matches}) > 1:
            raise LookupError(
                f"{selector!r} is ambiguous ({len(matches)} matches)"
            )
        return matches[-1]

    def _maybe_compact(self) -> None:
        try:
            if os.path.getsize(self.path) < _COMPACT_THRESHOLD_BYTES:
                return
        except OSError:
            return
        self.compact()

    def compact(self, keep: int | None = None) -> None:
        """Rewrite the store with only the newest ``keep`` records."""
        keep = keep if keep is not None else history_keep()
        kept = self.records()[-keep:]
        tmp = self.path.with_suffix(".jsonl.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in kept:
                    handle.write(json.dumps(record.data, default=str) + "\n")
            os.replace(tmp, self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass


def compile_record(
    *,
    program: str,
    digest: str,
    strategy: str,
    device: str,
    stop: str,
    wall_ms: float,
    passes: Sequence[Mapping[str, Any]],
    counters: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build the ``compile`` history payload for one ``Session.run``."""
    return {
        "program": program,
        "digest": digest,
        "strategy": strategy,
        "device": device,
        "stop": stop,
        "wall_ms": round(float(wall_ms), 6),
        "passes": [dict(p) for p in passes],
        "counters": dict(counters or {}),
    }


def bench_record(
    *, suite: str, device: str, entries: Iterable[Mapping[str, Any]]
) -> dict[str, Any]:
    """Build the ``bench`` payload: per-stencil medians, not raw runs."""
    summary = []
    for entry in entries:
        item: dict[str, Any] = {"stencil": entry.get("stencil")}
        wall = entry.get("wall_s")
        if isinstance(wall, Mapping) and "median" in wall:
            item["wall_ms"] = round(float(wall["median"]) * 1e3, 6)
        timings = entry.get("timings")
        if isinstance(timings, Mapping):
            item["timings_ms"] = {
                name: round(float(stats.get("median", 0.0)) * 1e3, 6)
                for name, stats in timings.items()
                if isinstance(stats, Mapping)
            }
        summary.append(item)
    return {"suite": suite, "device": device, "entries": summary}


def tune_record(
    *,
    program: str,
    strategy_space: str,
    trials: int,
    best_score: float,
    best_config: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build the ``tune`` payload: the sweep summary, not every trial.

    ``best_score`` is in the sweep's objective units (model cost or
    measured seconds, whichever objective ran).
    """
    return {
        "program": program,
        "strategy_space": strategy_space,
        "trials": int(trials),
        "best_score": float(best_score),
        "best_config": dict(best_config or {}),
    }
