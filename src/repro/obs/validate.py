"""Chrome trace-event schema validation (the CI trace-smoke gate).

Checks the structural invariants downstream viewers rely on: a
``traceEvents`` list whose events all carry ``name``/``ph``/``pid``/``tid``,
complete-duration events (``"X"``) with numeric ``ts``/``dur``, unique span
ids, and parent references that resolve within the trace.

Usable as a library (:func:`validate_chrome_trace`) and as a CLI::

    python -m repro.obs.validate trace.json

Exit codes: 0 valid, 1 invalid, 2 unreadable/not JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from collections.abc import Mapping
from typing import Any


def validate_chrome_trace(document: Mapping[str, Any]) -> list[str]:
    """Return every schema problem found (empty list = valid)."""
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents list"]
    if not events:
        problems.append("traceEvents is empty")
    span_ids: set[str] = set()
    parent_refs: list[tuple[int, str]] = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        phase = event.get("ph")
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: name is not a string")
        for field in ("pid", "tid"):
            if field in event and not isinstance(event[field], int):
                problems.append(f"{where}: {field} is not an integer")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)):
                    problems.append(f"{where}: {field} is not a number")
                elif field == "dur" and value < 0:
                    problems.append(f"{where}: negative dur")
            args = event.get("args")
            if not isinstance(args, Mapping):
                problems.append(f"{where}: X event has no args object")
                continue
            span_id = args.get("span_id")
            if not isinstance(span_id, str) or not span_id:
                problems.append(f"{where}: args.span_id missing or empty")
            elif span_id in span_ids:
                problems.append(f"{where}: duplicate span_id {span_id!r}")
            else:
                span_ids.add(span_id)
            parent = args.get("parent_id")
            if parent is not None:
                if not isinstance(parent, str):
                    problems.append(f"{where}: args.parent_id is not a string")
                else:
                    parent_refs.append((index, parent))
        elif phase == "M":
            if not isinstance(event.get("args"), Mapping):
                problems.append(f"{where}: metadata event has no args object")
    for index, parent in parent_refs:
        if parent not in span_ids:
            problems.append(
                f"traceEvents[{index}]: parent_id {parent!r} does not resolve"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate a Chrome trace-event JSON file (hexcc trace output).",
    )
    parser.add_argument("trace", help="path to a trace.json")
    args = parser.parse_args(argv)
    try:
        document = json.loads(Path(args.trace).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {args.trace}: {error}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(document)
    if problems:
        for problem in problems:
            print(f"INVALID {problem}", file=sys.stderr)
        print(f"{args.trace}: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    events = document["traceEvents"]
    spans = sum(1 for event in events if event.get("ph") == "X")
    pids = {event.get("pid") for event in events}
    print(f"{args.trace}: valid ({spans} spans across {len(pids)} process(es))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
