"""Chrome trace-event schema validation (the CI trace-smoke gate).

Checks the structural invariants downstream viewers rely on: a
``traceEvents`` list whose events all carry ``name``/``ph``/``pid``/``tid``,
complete-duration events (``"X"``) with numeric ``ts``/``dur`` (durations
must be non-negative), unique span ids, and parent links that are sound —
every parent id resolves within the trace (no **orphan spans**), no span
is its own parent, and following parent links never cycles.

Usable as a library (:func:`validate_chrome_trace`, or
:func:`validate_spans` for in-memory :class:`~repro.obs.Span` lists before
export) and as a CLI::

    python -m repro.obs.validate trace.json

Exit codes: 0 valid, 1 invalid, 2 unreadable/not JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from collections.abc import Mapping, Sequence
from typing import Any


def _parent_link_problems(
    links: Mapping[str, str | None], where: Mapping[str, str]
) -> list[str]:
    """Problems in a span_id → parent_id map: orphans, self-parents, cycles.

    ``where`` maps span ids to a human-readable location for messages.
    """
    problems: list[str] = []
    for span_id, parent in links.items():
        if parent is None:
            continue
        if parent == span_id:
            problems.append(f"{where[span_id]}: span is its own parent")
        elif parent not in links:
            problems.append(
                f"{where[span_id]}: orphan span, parent_id {parent!r} "
                "does not resolve"
            )
    # Cycle detection over the resolvable links (a cycle never terminates
    # at a root, so walking with a visited set finds it).
    state: dict[str, int] = {}  # 1 = in progress, 2 = done
    for start in links:
        if state.get(start):
            continue
        path: list[str] = []
        node: str | None = start
        while node is not None and node in links and not state.get(node):
            state[node] = 1
            path.append(node)
            node = links[node]
        if node is not None and state.get(node) == 1:
            cycle_start = path.index(node)
            cycle = " -> ".join(path[cycle_start:] + [node])
            problems.append(f"{where[node]}: parent cycle ({cycle})")
        for visited in path:
            state[visited] = 2
    return problems


def validate_spans(spans: Sequence[Any]) -> list[str]:
    """Validate in-memory spans (before export): same parent-link rules."""
    problems: list[str] = []
    links: dict[str, str | None] = {}
    where: dict[str, str] = {}
    for index, span in enumerate(spans):
        location = f"spans[{index}] ({span.name})"
        if not span.span_id:
            problems.append(f"{location}: empty span_id")
            continue
        if span.span_id in links:
            problems.append(f"{location}: duplicate span_id {span.span_id!r}")
            continue
        if span.duration_ns < 0:
            problems.append(f"{location}: negative duration")
        links[span.span_id] = span.parent_id
        where[span.span_id] = location
    problems.extend(_parent_link_problems(links, where))
    return problems


def validate_chrome_trace(document: Mapping[str, Any]) -> list[str]:
    """Return every schema problem found (empty list = valid)."""
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents list"]
    if not events:
        problems.append("traceEvents is empty")
    span_ids: set[str] = set()
    links: dict[str, str | None] = {}
    where: dict[str, str] = {}
    # Parent refs from events that could not register a span id (missing or
    # duplicate) — their links still have to resolve somewhere.
    dangling: list[tuple[str, str]] = []
    for index, event in enumerate(events):
        location = f"traceEvents[{index}]"
        if not isinstance(event, Mapping):
            problems.append(f"{location}: not an object")
            continue
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                problems.append(f"{location}: missing {field!r}")
        phase = event.get("ph")
        if not isinstance(event.get("name"), str):
            problems.append(f"{location}: name is not a string")
        for field in ("pid", "tid"):
            if field in event and not isinstance(event[field], int):
                problems.append(f"{location}: {field} is not an integer")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)):
                    problems.append(f"{location}: {field} is not a number")
                elif field == "dur" and value < 0:
                    problems.append(f"{location}: negative dur")
            args = event.get("args")
            if not isinstance(args, Mapping):
                problems.append(f"{location}: X event has no args object")
                continue
            span_id = args.get("span_id")
            if not isinstance(span_id, str) or not span_id:
                problems.append(f"{location}: args.span_id missing or empty")
                span_id = None
            elif span_id in span_ids:
                problems.append(f"{location}: duplicate span_id {span_id!r}")
                span_id = None
            else:
                span_ids.add(span_id)
            parent = args.get("parent_id")
            if parent is not None and not isinstance(parent, str):
                problems.append(f"{location}: args.parent_id is not a string")
                parent = None
            if span_id is not None:
                links[span_id] = parent if isinstance(parent, str) else None
                where[span_id] = location
            elif isinstance(parent, str):
                dangling.append((location, parent))
        elif phase == "M":
            if not isinstance(event.get("args"), Mapping):
                problems.append(f"{location}: metadata event has no args object")
    problems.extend(_parent_link_problems(links, where))
    for location, parent in dangling:
        if parent not in links:
            problems.append(
                f"{location}: orphan span, parent_id {parent!r} does not resolve"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate a Chrome trace-event JSON file (hexcc trace output).",
    )
    parser.add_argument("trace", help="path to a trace.json")
    args = parser.parse_args(argv)
    try:
        document = json.loads(Path(args.trace).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {args.trace}: {error}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(document)
    if problems:
        for problem in problems:
            print(f"INVALID {problem}", file=sys.stderr)
        print(f"{args.trace}: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    events = document["traceEvents"]
    spans = sum(1 for event in events if event.get("ph") == "X")
    pids = {event.get("pid") for event in events}
    print(f"{args.trace}: valid ({spans} spans across {len(pids)} process(es))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
