"""Regression attribution: *which pass* made a run slower, and by how much.

The bench gate (:mod:`repro.bench.compare`) can tell that a stencil's wall
time regressed; this module decomposes the delta into per-pass
contributions using the span-derived per-pass timings already embedded in
``bench --json`` entries (and in run-history compile records), so a gate
failure names the guilty pass instead of just the symptom.

The decomposition is robust, not naive:

* each pass's old/new time is the **median** across repeats;
* a pass only counts as *significant* when its delta clears a per-pass
  noise floor of ``3 × 1.4826 × max(MAD(old runs), MAD(new runs))`` — the
  median absolute deviation scaled to a normal-equivalent sigma, so a
  noisy pass must move further than a quiet one to be blamed;
* cache-provenance flips are split out: when a pass's artifact source
  changed between ``computed`` and a cache tier (``memory``/``disk``),
  its delta is cold-vs-warm-cache behaviour, not a pass regression, and
  is reported as the **cache contribution** instead of as guilt.

The **guilty** pass is the significant, non-cache-flip pass with the
largest delta in the direction of the total change.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from collections.abc import Mapping, Sequence
from typing import Any

#: 1.4826 × MAD estimates the standard deviation of normal data; three of
#: those is the classic robust outlier fence.
MAD_TO_SIGMA = 1.4826
NOISE_SIGMAS = 3.0
#: Lower bound on any noise floor (ms): single-sample inputs have MAD 0,
#: and even repeated runs wobble by tens of microseconds from scheduling.
MIN_NOISE_FLOOR_MS = 0.05

#: Artifact sources that count as cache hits (vs ``computed``/``injected``).
_CACHE_SOURCES = frozenset({"memory", "disk"})


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation (unscaled)."""
    if len(values) < 2:
        return 0.0
    center = median(values)
    return median(abs(v - center) for v in values)


@dataclass(frozen=True)
class PassSample:
    """One pass's measurements on one side of the comparison (ms)."""

    name: str
    runs_ms: tuple[float, ...]
    source: str | None = None  # dominant artifact provenance, if known

    @property
    def median_ms(self) -> float:
        return median(self.runs_ms) if self.runs_ms else 0.0


@dataclass(frozen=True)
class PassContribution:
    """One pass's share of the total wall-time delta."""

    name: str
    old_ms: float
    new_ms: float
    noise_floor_ms: float
    old_source: str | None = None
    new_source: str | None = None

    @property
    def delta_ms(self) -> float:
        return self.new_ms - self.old_ms

    @property
    def significant(self) -> bool:
        return abs(self.delta_ms) > self.noise_floor_ms

    @property
    def cache_transition(self) -> bool:
        """Did this pass's provenance flip between computed and a cache tier?"""
        if self.old_source is None or self.new_source is None:
            return False
        return (self.old_source in _CACHE_SOURCES) != (
            self.new_source in _CACHE_SOURCES
        )

    def describe(self, total_delta_ms: float) -> str:
        share = (
            f"{self.delta_ms / total_delta_ms:+.0%}" if total_delta_ms else "-"
        )
        line = (
            f"{self.name:<14} {self.old_ms:9.3f} -> {self.new_ms:9.3f} ms"
            f"  ({self.delta_ms:+9.3f} ms, {share})"
        )
        if self.cache_transition:
            line += f"  [cache: {self.old_source} -> {self.new_source}]"
        elif not self.significant:
            line += "  [within noise]"
        return line


@dataclass(frozen=True)
class Attribution:
    """The decomposition of one wall-time delta."""

    old_total_ms: float
    new_total_ms: float
    contributions: tuple[PassContribution, ...]
    guilty: str | None  # pass name, or None when nothing clears the floor
    cache_delta_ms: float  # summed delta of cache-provenance flips

    @property
    def total_delta_ms(self) -> float:
        return self.new_total_ms - self.old_total_ms

    @property
    def guilty_share(self) -> float:
        """The guilty pass's fraction of the total delta (0 when no guilt)."""
        if self.guilty is None or not self.total_delta_ms:
            return 0.0
        for contribution in self.contributions:
            if contribution.name == self.guilty:
                return contribution.delta_ms / self.total_delta_ms
        return 0.0

    def headline(self) -> str:
        """The one-line verdict the CI gate prints next to a regression."""
        direction = "slower" if self.total_delta_ms >= 0 else "faster"
        head = (
            f"attribution: {abs(self.total_delta_ms):.3f} ms {direction} "
            f"({self.old_total_ms:.3f} -> {self.new_total_ms:.3f} ms)"
        )
        if self.guilty is not None:
            head += f"; guilty pass: {self.guilty} ({self.guilty_share:.0%} of delta)"
        elif abs(self.cache_delta_ms) > abs(self.total_delta_ms) / 2:
            head += "; dominated by cache-tier change"
        else:
            head += "; no pass clears the noise floor"
        return head

    def describe(self) -> str:
        lines = [self.headline()]
        ranked = sorted(
            self.contributions, key=lambda c: abs(c.delta_ms), reverse=True
        )
        for contribution in ranked:
            lines.append("  " + contribution.describe(self.total_delta_ms))
        if self.cache_delta_ms:
            lines.append(
                f"  cache-tier contribution: {self.cache_delta_ms:+.3f} ms"
            )
        return "\n".join(lines)


def attribute(
    old: Sequence[PassSample], new: Sequence[PassSample]
) -> Attribution:
    """Decompose the delta between two sets of per-pass samples."""
    old_by_name = {sample.name: sample for sample in old}
    new_by_name = {sample.name: sample for sample in new}
    names = list(old_by_name)
    names += [name for name in new_by_name if name not in old_by_name]

    contributions: list[PassContribution] = []
    for name in names:
        old_sample = old_by_name.get(name)
        new_sample = new_by_name.get(name)
        floor = max(
            MIN_NOISE_FLOOR_MS,
            NOISE_SIGMAS
            * MAD_TO_SIGMA
            * max(
                mad(old_sample.runs_ms) if old_sample else 0.0,
                mad(new_sample.runs_ms) if new_sample else 0.0,
            ),
        )
        contributions.append(
            PassContribution(
                name=name,
                old_ms=old_sample.median_ms if old_sample else 0.0,
                new_ms=new_sample.median_ms if new_sample else 0.0,
                noise_floor_ms=floor,
                old_source=old_sample.source if old_sample else None,
                new_source=new_sample.source if new_sample else None,
            )
        )

    old_total = sum(c.old_ms for c in contributions)
    new_total = sum(c.new_ms for c in contributions)
    total_delta = new_total - old_total
    cache_delta = sum(c.delta_ms for c in contributions if c.cache_transition)

    guilty: str | None = None
    guilty_delta = 0.0
    for contribution in contributions:
        if not contribution.significant or contribution.cache_transition:
            continue
        # Blame only movement in the direction of the total change.
        if total_delta >= 0 and contribution.delta_ms <= 0:
            continue
        if total_delta < 0 and contribution.delta_ms >= 0:
            continue
        if abs(contribution.delta_ms) > abs(guilty_delta):
            guilty = contribution.name
            guilty_delta = contribution.delta_ms

    return Attribution(
        old_total_ms=old_total,
        new_total_ms=new_total,
        contributions=tuple(contributions),
        guilty=guilty,
        cache_delta_ms=cache_delta,
    )


def _dominant_source(counts: Mapping[str, Any] | None) -> str | None:
    if not isinstance(counts, Mapping) or not counts:
        return None
    return max(counts.items(), key=lambda item: (int(item[1]), item[0]))[0]


def samples_from_entry(entry: Mapping[str, Any]) -> list[PassSample]:
    """Per-pass samples from one ``bench --json`` compile-suite entry.

    Uses the ``timings`` block (``pass.<name>`` → runs in seconds) and the
    ``sources`` provenance counts when present; entries without per-pass
    timings (e.g. the simulate suite) yield an empty list.
    """
    timings = entry.get("timings")
    if not isinstance(timings, Mapping):
        return []
    sources = entry.get("sources")
    samples: list[PassSample] = []
    for key, stats in timings.items():
        if not isinstance(stats, Mapping):
            continue
        name = key[5:] if key.startswith("pass.") else key
        runs = stats.get("runs")
        if not isinstance(runs, Sequence) or not runs:
            runs = [stats.get("median", 0.0)]
        samples.append(
            PassSample(
                name=name,
                runs_ms=tuple(float(r) * 1e3 for r in runs),
                source=_dominant_source(
                    sources.get(key) if isinstance(sources, Mapping) else None
                ),
            )
        )
    return samples


def attribute_entries(
    old_entry: Mapping[str, Any], new_entry: Mapping[str, Any]
) -> Attribution | None:
    """Attribution between two bench entries; ``None`` without pass timings."""
    old_samples = samples_from_entry(old_entry)
    new_samples = samples_from_entry(new_entry)
    if not old_samples or not new_samples:
        return None
    return attribute(old_samples, new_samples)


def samples_from_record(data: Mapping[str, Any]) -> list[PassSample]:
    """Per-pass samples from one run-history ``compile`` record."""
    samples: list[PassSample] = []
    for item in data.get("passes", ()):
        if not isinstance(item, Mapping) or "name" not in item:
            continue
        samples.append(
            PassSample(
                name=str(item["name"]),
                runs_ms=(float(item.get("wall_ms", 0.0)),),
                source=item.get("source"),
            )
        )
    return samples


def attribute_records(
    old_data: Mapping[str, Any], new_data: Mapping[str, Any]
) -> Attribution | None:
    """Attribution between two history compile records (single samples)."""
    old_samples = samples_from_record(old_data)
    new_samples = samples_from_record(new_data)
    if not old_samples or not new_samples:
        return None
    return attribute(old_samples, new_samples)
