"""``repro.obs`` — the zero-dependency telemetry subsystem.

Three pieces (see :doc:`the README's Observability section <README>`):

* **spans** (:mod:`repro.obs.spans`) — hierarchical timed regions threaded
  through the pass pipeline, the disk cache, the execution engine (with
  cross-process propagation), the tuner and the bench runner;
* **metrics** (:mod:`repro.obs.metrics`) — a registry of counters, gauges
  and fixed-bucket histograms with atomic snapshot/merge;
* **exporters** (:mod:`repro.obs.export`, :mod:`repro.obs.profile`) —
  Chrome trace-event JSON (open in Perfetto or chrome://tracing), a JSON
  metrics dump and the inclusive/exclusive profile table behind
  ``hexcc profile``.

The two halves are bundled into a :class:`Telemetry` object.  Exactly one
telemetry is **ambient** at any point (a :mod:`contextvars` variable, so
activations nest correctly); the default is :data:`NULL_TELEMETRY`, whose
recorder and registry are no-ops — instrumented code never checks a flag,
it just calls :func:`span`/:func:`count` and the disabled path costs a few
hundred nanoseconds (bounded by the ``python -m repro.obs.overhead`` gate).

Usage::

    from repro import obs

    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        with obs.span("my.work", items=3):
            ...  # sessions, caches and engine fan-outs record here

    spans = telemetry.recorder.drain()
    obs.export.write_trace("trace.json", spans, telemetry.metrics.snapshot())
"""

from __future__ import annotations

import contextlib
import contextvars
from collections.abc import Iterator
from typing import Any

from repro.obs import attrib, export, expo, history, log, profile
from repro.obs.log import (
    FLIGHT_RECORDER,
    Event,
    EventLog,
    NullEventLog,
    write_crash_report,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    MetricsRegistry,
    NullMetrics,
    metric_key,
)
from repro.obs.spans import (
    NullRecorder,
    Span,
    SpanHandle,
    TraceContext,
    TraceRecorder,
)

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Event",
    "EventLog",
    "FLIGHT_RECORDER",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullEventLog",
    "NullMetrics",
    "NullRecorder",
    "Span",
    "SpanHandle",
    "Telemetry",
    "TraceContext",
    "TraceRecorder",
    "attrib",
    "count",
    "current",
    "event",
    "export",
    "expo",
    "gauge",
    "history",
    "log",
    "metric_key",
    "observe",
    "profile",
    "span",
    "use",
    "write_crash_report",
]


class Telemetry:
    """One recorder + metrics registry + event log, enabled or no-op.

    A disabled telemetry still exposes the process-global
    :data:`~repro.obs.log.FLIGHT_RECORDER` as its event log, so the last N
    events are always available to a crash report even when nothing opted
    into tracing; an enabled telemetry gets its own bounded log.
    """

    __slots__ = ("recorder", "metrics", "events")

    def __init__(
        self,
        enabled: bool = True,
        recorder: NullRecorder | None = None,
        metrics: NullMetrics | None = None,
        events: NullEventLog | None = None,
    ) -> None:
        if recorder is not None:
            self.recorder = recorder
        else:
            self.recorder = TraceRecorder() if enabled else NullRecorder()
        if metrics is not None:
            self.metrics = metrics
        else:
            self.metrics = MetricsRegistry() if enabled else NullMetrics()
        if events is not None:
            self.events = events
        else:
            self.events = EventLog() if enabled else FLIGHT_RECORDER

    @property
    def enabled(self) -> bool:
        return self.recorder.enabled

    def span(self, name: str, **attributes: Any) -> SpanHandle:
        return self.recorder.span(name, **attributes)

    def __repr__(self) -> str:
        return f"Telemetry(enabled={self.enabled})"


#: The ambient default: fully disabled, shared, stateless.
NULL_TELEMETRY = Telemetry(enabled=False)

_ACTIVE: contextvars.ContextVar[Telemetry] = contextvars.ContextVar(
    "hexcc-telemetry", default=NULL_TELEMETRY
)


def current() -> Telemetry:
    """The ambient telemetry (the shared no-op unless :func:`use` is active)."""
    return _ACTIVE.get()


@contextlib.contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Make ``telemetry`` ambient for the duration of the block (re-entrant)."""
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)


def span(name: str, **attributes: Any) -> SpanHandle:
    """Open a span on the ambient recorder (a no-op handle when disabled)."""
    return _ACTIVE.get().recorder.span(name, **attributes)


def event(name: str, level: str = "info", **fields: Any) -> None:
    """Emit a structured event on the ambient log.

    The active span id and trace id are captured at emit time, so the
    event can be joined back onto the trace; under the fully disabled
    telemetry the event still lands in the process-global flight recorder
    (bounded ring, microsecond cost) for post-mortems.
    """
    telemetry = _ACTIVE.get()
    telemetry.events.emit(
        name,
        level=level,
        span_id=telemetry.recorder.current_span_id(),
        trace_id=telemetry.recorder.trace_id,
        **fields,
    )


def count(name: str, value: float = 1.0, **labels: Any) -> None:
    """Increment a counter on the ambient registry."""
    _ACTIVE.get().metrics.count(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge on the ambient registry."""
    _ACTIVE.get().metrics.gauge(name, value, **labels)


def observe(
    name: str,
    value: float,
    buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS,
    **labels: Any,
) -> None:
    """Record a histogram sample on the ambient registry."""
    _ACTIVE.get().metrics.observe(name, value, buckets, **labels)
