"""Prometheus text-format exposition of a metrics snapshot.

``hexcc metrics`` renders a :class:`~repro.obs.MetricsRegistry` snapshot in
the Prometheus `text exposition format`__ — the contract a future
``hexcc serve`` endpoint will expose for scraping, testable today without
a server.  The rendering follows the format's rules:

* metric names are sanitised (``.`` → ``_``) and prefixed ``hexcc_``;
* counters get the ``_total`` suffix and ``# TYPE ... counter``;
* histograms render cumulative ``_bucket{le="..."}`` series ending in
  ``le="+Inf"`` (equal to ``_count``), plus ``_sum`` and ``_count``;
* label values escape backslash, double quote and newline.

:func:`parse_prometheus_text` is the deliberately strict inverse used by
``hexcc metrics --check`` and the tests: it re-parses an exposition and
verifies the structural invariants (known types, cumulative buckets,
``+Inf`` == ``_count``), so the rendering cannot silently drift away from
what a real scraper would accept.

__ https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from collections.abc import Mapping
from typing import Any

METRIC_PREFIX = "hexcc_"

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Split a registry key (``name{k=v,k2=v2}``) into name + labels."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value
    return name, labels


def _sanitise_name(name: str) -> str:
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return METRIC_PREFIX + cleaned


def _sanitise_label(label: str) -> str:
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", label)
    if not cleaned or not _LABEL_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitise_label(k)}="{_escape_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render one registry snapshot as Prometheus exposition text."""
    families: dict[str, tuple[str, list[str]]] = {}

    def family(name: str, metric_type: str) -> list[str]:
        entry = families.get(name)
        if entry is None:
            entry = families[name] = (metric_type, [])
        return entry[1]

    for key, value in snapshot.get("counters", {}).items():
        raw_name, labels = parse_metric_key(key)
        name = _sanitise_name(raw_name) + "_total"
        family(name, "counter").append(
            f"{name}{_labels_text(labels)} {_format_number(float(value))}"
        )

    for key, value in snapshot.get("gauges", {}).items():
        raw_name, labels = parse_metric_key(key)
        name = _sanitise_name(raw_name)
        family(name, "gauge").append(
            f"{name}{_labels_text(labels)} {_format_number(float(value))}"
        )

    for key, payload in snapshot.get("histograms", {}).items():
        if not isinstance(payload, Mapping):
            continue
        raw_name, labels = parse_metric_key(key)
        name = _sanitise_name(raw_name)
        lines = family(name, "histogram")
        buckets = [float(b) for b in payload.get("buckets", ())]
        counts = [int(c) for c in payload.get("counts", ())]
        cumulative = 0
        for bound, count in zip(buckets, counts):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_number(bound)
            lines.append(
                f"{name}_bucket{_labels_text(bucket_labels)} {cumulative}"
            )
        total_count = int(payload.get("count", 0))
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(f"{name}_bucket{_labels_text(inf_labels)} {total_count}")
        lines.append(
            f"{name}_sum{_labels_text(labels)} "
            f"{_format_number(float(payload.get('sum', 0.0)))}"
        )
        lines.append(f"{name}_count{_labels_text(labels)} {total_count}")

    out: list[str] = []
    for name in sorted(families):
        metric_type, lines = families[name]
        out.append(f"# TYPE {name} {metric_type}")
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


@dataclass
class ParsedExposition:
    """A strictly parsed exposition: types + samples, ready to assert on."""

    types: dict[str, str] = field(default_factory=dict)
    #: family/series name → list of ``(labels, value)`` samples.
    samples: dict[str, list[tuple[dict[str, str], float]]] = field(
        default_factory=dict
    )

    def value(self, name: str, **labels: str) -> float:
        """The single sample matching ``name`` + labels exactly."""
        matches = [
            v for lbls, v in self.samples.get(name, []) if lbls == labels
        ]
        if len(matches) != 1:
            raise KeyError(f"{name}{labels}: {len(matches)} matches")
        return matches[0]


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage


def parse_prometheus_text(text: str) -> ParsedExposition:
    """Parse an exposition and check its structural invariants.

    Raises :class:`ValueError` on any violation: malformed lines, samples
    whose family has no ``# TYPE``, counters missing ``_total``,
    non-cumulative histogram buckets, or ``le="+Inf"`` != ``_count``.
    """
    parsed = ParsedExposition()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped",
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            parsed.types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels_text = match.group("labels") or ""
        labels = {
            key: _unescape(value)
            for key, value in _LABEL_PAIR.findall(labels_text)
        }
        # Reject junk the pair-regex silently skipped.
        stripped = _LABEL_PAIR.sub("", labels_text).replace(",", "").strip()
        if stripped:
            raise ValueError(f"line {lineno}: malformed labels {labels_text!r}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: malformed value {match.group('value')!r}"
            ) from None
        parsed.samples.setdefault(name, []).append((labels, value))

    _check_invariants(parsed)
    return parsed


def _family_of(sample_name: str, types: Mapping[str, str]) -> str | None:
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def _check_invariants(parsed: ParsedExposition) -> None:
    for name in parsed.samples:
        family = _family_of(name, parsed.types)
        if family is None:
            raise ValueError(f"sample {name!r} has no # TYPE declaration")
        if parsed.types[family] == "counter" and not name.endswith("_total"):
            raise ValueError(f"counter sample {name!r} lacks the _total suffix")

    for family, metric_type in parsed.types.items():
        if metric_type != "histogram":
            continue
        # Group bucket samples by their non-le labels.
        series: dict[tuple, list[tuple[float, float]]] = {}
        for labels, value in parsed.samples.get(f"{family}_bucket", []):
            if "le" not in labels:
                raise ValueError(f"{family}_bucket sample lacks an le label")
            rest = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            series.setdefault(rest, []).append(
                (_parse_value(labels["le"]), value)
            )
        for rest, buckets in series.items():
            buckets.sort(key=lambda item: item[0])
            if not buckets or not math.isinf(buckets[-1][0]):
                raise ValueError(f"{family}{dict(rest)}: no le=\"+Inf\" bucket")
            cumulative = [count for _, count in buckets]
            if cumulative != sorted(cumulative):
                raise ValueError(f"{family}{dict(rest)}: buckets not cumulative")
            count = parsed.value(f"{family}_count", **dict(rest))
            if buckets[-1][1] != count:
                raise ValueError(
                    f"{family}{dict(rest)}: le=\"+Inf\" ({buckets[-1][1]}) "
                    f"!= _count ({count})"
                )
