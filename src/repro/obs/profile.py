"""Inclusive/exclusive time aggregation over a span tree (``hexcc profile``).

*Inclusive* time is a span's full wall duration; *exclusive* time subtracts
the inclusive time of its direct children — the time spent in the region
itself.  For a single-process trace the exclusive times of all spans sum to
the inclusive time of the roots (total wall time), which is what makes the
ranking trustworthy: nothing is double-counted, nothing is hidden.

Concurrent subtrees (engine workers overlapping their parent fan-out span)
can push a parent's naive exclusive time negative; it is clamped at zero,
so multi-process traces still rank sensibly even though worker wall time
does not sum into the parent's timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.obs.spans import Span


@dataclass(frozen=True)
class ProfileRow:
    """Aggregated timing of every span sharing one name."""

    name: str
    count: int
    inclusive_s: float
    exclusive_s: float


def total_wall_s(spans: Sequence[Span]) -> float:
    """Sum of the root spans' durations (the trace's total wall time)."""
    ids = {span.span_id for span in spans}
    return sum(
        span.duration_s
        for span in spans
        if span.parent_id is None or span.parent_id not in ids
    )


def profile_rows(spans: Sequence[Span]) -> list[ProfileRow]:
    """Aggregate spans by name, ranked by exclusive time (descending)."""
    child_ns: dict[str, int] = {}
    ids = {span.span_id for span in spans}
    for span in spans:
        if span.parent_id in ids:
            child_ns[span.parent_id] = (
                child_ns.get(span.parent_id, 0) + span.duration_ns
            )
    totals: dict[str, list[float]] = {}  # name -> [count, inclusive, exclusive]
    for span in spans:
        exclusive_ns = max(0, span.duration_ns - child_ns.get(span.span_id, 0))
        entry = totals.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.duration_ns / 1e9
        entry[2] += exclusive_ns / 1e9
    rows = [
        ProfileRow(name=name, count=int(c), inclusive_s=i, exclusive_s=e)
        for name, (c, i, e) in totals.items()
    ]
    rows.sort(key=lambda row: (-row.exclusive_s, row.name))
    return rows


def format_profile(rows: Sequence[ProfileRow], total_s: float) -> str:
    """The human table behind ``hexcc profile``."""
    lines = [
        f"{'span':<24} {'count':>6} {'inclusive':>12} {'exclusive':>12} {'excl %':>7}"
    ]
    for row in rows:
        share = row.exclusive_s / total_s if total_s > 0 else 0.0
        lines.append(
            f"{row.name:<24} {row.count:>6} {row.inclusive_s * 1e3:>9.3f} ms "
            f"{row.exclusive_s * 1e3:>9.3f} ms {share:>6.1%}"
        )
    accounted = sum(row.exclusive_s for row in rows)
    lines.append(
        f"{'total':<24} {'':>6} {total_s * 1e3:>9.3f} ms "
        f"{accounted * 1e3:>9.3f} ms {accounted / total_s if total_s > 0 else 0.0:>6.1%}"
    )
    return "\n".join(lines)
