"""The metrics registry: counters, gauges and fixed-bucket histograms.

Metrics are identified by a name plus optional labels, flattened into a
stable key (``cache.hit{stage=tiling}``) so snapshots are plain JSON-safe
dictionaries.  A :class:`MetricsRegistry` supports

* **atomic snapshots** — :meth:`MetricsRegistry.snapshot` returns a
  self-contained document under the registry lock;
* **merging** — :meth:`MetricsRegistry.merge` folds a snapshot (typically
  shipped back from an engine worker process) into this registry: counters
  add, gauges take the incoming value, histograms add bucket-wise.  A
  snapshot whose histogram bucket boundaries disagree with the registry's
  is *re-binned* rather than dropped: each incoming bucket's count lands in
  the first resident bucket whose upper bound is not below the incoming
  bound, which keeps ``count``/``sum``/``min``/``max`` exact and the
  cumulative counts at every shared boundary exact (sub-boundary detail the
  incoming layout never had stays conservative, never inflated).  Snapshots
  carry a unique ``snapshot_id``; merging the same snapshot twice is a
  no-op, so a retried worker hand-off cannot double-count.

The disabled counterpart, :class:`NullMetrics`, makes every operation a
no-op so always-on instrumentation stays effectively free.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections.abc import Mapping, Sequence
from typing import Any

#: Default histogram bucket upper bounds, in milliseconds; the implicit
#: final bucket is +inf.  Chosen around the compiler's observed range: the
#: three sub-millisecond bounds resolve warm-disk-cache compiles (sub-ms
#: since the persistent cache landed), then tens-of-ms cold compiles and
#: seconds-long sweeps.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0,
    1000.0, 5000.0,
)

#: Process-global snapshot sequence; ids are ``{pid:x}-{seq}`` so snapshots
#: minted by pool-reused worker processes can never collide.
_SNAPSHOT_SEQ = itertools.count(1)

#: How many already-merged snapshot ids a registry remembers (bounds the
#: dedup memory; far above any realistic fan-out width).
_MERGED_IDS_LIMIT = 4096


def remap_bucket_counts(
    src_buckets: Sequence[float],
    src_counts: Sequence[int],
    dst_buckets: Sequence[float],
) -> list[int]:
    """Re-bin histogram counts from one bucket layout onto another.

    Each source bucket's count goes to the first destination bucket whose
    upper bound is ``>=`` the source bound (the implicit final bucket is
    +inf on both sides).  A sample known to be ``<= b`` is certainly
    ``<= b' `` for any ``b' >= b``, so the result is always *cumulatively
    conservative*: cumulative counts at boundaries shared by both layouts
    are exact, cumulative counts at destination-only boundaries are lower
    bounds.  Coarsening (every destination bound present in the source) is
    exact everywhere.
    """
    remapped = [0] * (len(dst_buckets) + 1)
    for index, count in enumerate(src_counts):
        if not count:
            continue
        if index >= len(src_buckets):  # the source +inf bucket
            remapped[len(dst_buckets)] += int(count)
            continue
        bound = src_buckets[index]
        target = len(dst_buckets)
        for j, dst_bound in enumerate(dst_buckets):
            if dst_bound >= bound:
                target = j
                break
        remapped[target] += int(count)
    return remapped


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Flatten a metric name + labels into a stable string key.

    Labels with ``None`` values are dropped (an absent label, not a label
    with the literal value ``None``).
    """
    parts = [
        f"{key}={value}"
        for key, value in sorted(labels.items())
        if value is not None
    ]
    if not parts:
        return name
    return f"{name}{{{','.join(parts)}}}"


class _Histogram:
    __slots__ = ("buckets", "counts", "total", "count", "min", "max")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last bucket = +inf
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge(self, other: Mapping[str, Any]) -> None:
        counts = [int(c) for c in other.get("counts", ())]
        other_buckets = tuple(float(b) for b in other.get("buckets", ()))
        if other_buckets != self.buckets:
            # A different bucket layout (e.g. a snapshot recorded before the
            # sub-ms buckets existed): re-bin instead of silently dropping.
            counts = remap_bucket_counts(other_buckets, counts, self.buckets)
        for i, count in enumerate(counts):
            if i < len(self.counts):
                self.counts[i] += count
        self.total += float(other.get("sum", 0.0))
        self.count += int(other.get("count", 0))
        if other.get("min") is not None:
            self.min = min(self.min, float(other["min"]))
        if other.get("max") is not None:
            self.max = max(self.max, float(other["max"]))


class NullMetrics:
    """The disabled registry: every operation is a no-op."""

    enabled = False

    def count(self, name: str, value: float = 1.0, **labels: Any) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS,
        **labels: Any,
    ) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {}

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        pass

    def clear(self) -> None:
        pass


class MetricsRegistry(NullMetrics):
    """A thread-safe registry of counters, gauges and histograms."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}
        # Ids of snapshots already folded in (insertion-ordered so the
        # oldest are forgotten first once the dedup window fills up).
        self._merged_ids: dict[str, None] = {}
        #: How many merges were skipped as duplicates (same snapshot_id).
        self.duplicate_merges = 0

    def count(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` (default 1) to a monotonically increasing counter."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a point-in-time value (last write wins, also across merges)."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS,
        **labels: Any,
    ) -> None:
        """Record one sample into a fixed-bucket histogram."""
        key = metric_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram(tuple(buckets))
            histogram.observe(float(value))

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe, self-contained copy of every metric (atomic).

        Every snapshot carries a process-unique ``snapshot_id`` so a
        receiver can merge it idempotently (see :meth:`merge`).
        """
        with self._lock:
            return {
                "snapshot_id": f"{os.getpid():x}-{next(_SNAPSHOT_SEQ)}",
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: histogram.to_dict()
                    for key, histogram in self._histograms.items()
                },
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry.

        Merging is idempotent per snapshot: a snapshot whose
        ``snapshot_id`` was already merged is skipped (and counted in
        :attr:`duplicate_merges`), so counters cannot double-count when a
        hand-off is retried.  Id-less snapshots (older layouts, hand-built
        dictionaries) merge unconditionally.
        """
        if not snapshot:
            return
        with self._lock:
            snapshot_id = snapshot.get("snapshot_id")
            if isinstance(snapshot_id, str) and snapshot_id:
                if snapshot_id in self._merged_ids:
                    self.duplicate_merges += 1
                    return
                self._merged_ids[snapshot_id] = None
                while len(self._merged_ids) > _MERGED_IDS_LIMIT:
                    self._merged_ids.pop(next(iter(self._merged_ids)))
            for key, value in snapshot.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0.0) + float(value)
            for key, value in snapshot.get("gauges", {}).items():
                self._gauges[key] = float(value)
            for key, payload in snapshot.get("histograms", {}).items():
                if not isinstance(payload, Mapping):
                    continue
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = _Histogram(
                        tuple(payload.get("buckets", DEFAULT_BUCKETS_MS))
                    )
                histogram.merge(payload)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._merged_ids.clear()
            self.duplicate_merges = 0
