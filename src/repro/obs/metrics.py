"""The metrics registry: counters, gauges and fixed-bucket histograms.

Metrics are identified by a name plus optional labels, flattened into a
stable key (``cache.hit{stage=tiling}``) so snapshots are plain JSON-safe
dictionaries.  A :class:`MetricsRegistry` supports

* **atomic snapshots** — :meth:`MetricsRegistry.snapshot` returns a
  self-contained document under the registry lock;
* **merging** — :meth:`MetricsRegistry.merge` folds a snapshot (typically
  shipped back from an engine worker process) into this registry: counters
  add, gauges take the incoming value, histograms add bucket-wise when the
  bucket boundaries agree.

The disabled counterpart, :class:`NullMetrics`, makes every operation a
no-op so always-on instrumentation stays effectively free.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping
from typing import Any

#: Default histogram bucket upper bounds, in milliseconds; the implicit
#: final bucket is +inf.  Chosen around the compiler's observed range
#: (sub-ms warm compiles to tens-of-ms cold ones, seconds for sweeps).
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 250.0, 1000.0, 5000.0,
)


def metric_key(name: str, labels: Mapping[str, Any]) -> str:
    """Flatten a metric name + labels into a stable string key.

    Labels with ``None`` values are dropped (an absent label, not a label
    with the literal value ``None``).
    """
    parts = [
        f"{key}={value}"
        for key, value in sorted(labels.items())
        if value is not None
    ]
    if not parts:
        return name
    return f"{name}{{{','.join(parts)}}}"


class _Histogram:
    __slots__ = ("buckets", "counts", "total", "count", "min", "max")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last bucket = +inf
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge(self, other: Mapping[str, Any]) -> None:
        if tuple(other.get("buckets", ())) != self.buckets:
            return  # incompatible boundaries: drop rather than corrupt
        for i, count in enumerate(other.get("counts", ())):
            if i < len(self.counts):
                self.counts[i] += int(count)
        self.total += float(other.get("sum", 0.0))
        self.count += int(other.get("count", 0))
        if other.get("min") is not None:
            self.min = min(self.min, float(other["min"]))
        if other.get("max") is not None:
            self.max = max(self.max, float(other["max"]))


class NullMetrics:
    """The disabled registry: every operation is a no-op."""

    enabled = False

    def count(self, name: str, value: float = 1.0, **labels: Any) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS,
        **labels: Any,
    ) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {}

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        pass

    def clear(self) -> None:
        pass


class MetricsRegistry(NullMetrics):
    """A thread-safe registry of counters, gauges and histograms."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    def count(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` (default 1) to a monotonically increasing counter."""
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set a point-in-time value (last write wins, also across merges)."""
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS,
        **labels: Any,
    ) -> None:
        """Record one sample into a fixed-bucket histogram."""
        key = metric_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram(tuple(buckets))
            histogram.observe(float(value))

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe, self-contained copy of every metric (atomic)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: histogram.to_dict()
                    for key, histogram in self._histograms.items()
                },
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        if not snapshot:
            return
        with self._lock:
            for key, value in snapshot.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0.0) + float(value)
            for key, value in snapshot.get("gauges", {}).items():
                self._gauges[key] = float(value)
            for key, payload in snapshot.get("histograms", {}).items():
                if not isinstance(payload, Mapping):
                    continue
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = _Histogram(
                        tuple(payload.get("buckets", DEFAULT_BUCKETS_MS))
                    )
                histogram.merge(payload)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
