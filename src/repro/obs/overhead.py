"""The disabled-telemetry overhead gate (``python -m repro.obs.overhead``).

The telemetry hooks are always compiled in: every pipeline pass, cache
access and engine fan-out opens a span and bumps counters against the
ambient telemetry, which defaults to the shared no-op pair.  This gate
bounds what that costs when **disabled**:

1. measure the median wall time of a full cold compile with telemetry
   disabled (fresh session, no disk cache — the same configuration the CI
   bench gate measures);
2. count how many spans one such compile actually opens (one traced run);
3. measure the per-span cost of the disabled path (null span + one counter
   bump, amortised over many iterations);
4. assert ``spans_per_compile × cost_per_span < limit × compile_wall``.

Exit codes: 0 within the bound, 1 exceeded, 2 usage error.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro import obs

DEFAULT_LIMIT = 0.02  # 2% of compile wall time
DEFAULT_REPEATS = 5
DEFAULT_SAMPLES = 20_000


def _compile_once(stencil: str) -> None:
    from repro.api import Session, get_stencil

    Session().run(get_stencil(stencil))


def measure_overhead(
    stencil: str = "jacobi_2d",
    repeats: int = DEFAULT_REPEATS,
    samples: int = DEFAULT_SAMPLES,
) -> dict[str, float]:
    """Measure the three quantities the bound is built from."""
    # 1. Disabled-telemetry compile wall time (median of fresh sessions).
    _compile_once(stencil)  # warm process-wide caches
    walls: list[float] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        _compile_once(stencil)
        walls.append(time.perf_counter() - start)
    compile_wall_s = statistics.median(walls)

    # 2. Spans one compile opens (trace an identical run).
    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        _compile_once(stencil)
    spans_per_compile = len(telemetry.recorder.drain())

    # 3. Disabled per-span cost: null span + one counter bump, the shape of
    # a typical instrumentation site.
    iterations = max(1, samples)
    start = time.perf_counter()
    for _ in range(iterations):
        with obs.span("overhead.probe"):
            obs.count("overhead.probe")
    span_cost_s = (time.perf_counter() - start) / iterations

    return {
        "compile_wall_s": compile_wall_s,
        "spans_per_compile": float(spans_per_compile),
        "span_cost_s": span_cost_s,
        "overhead_fraction": spans_per_compile * span_cost_s / compile_wall_s,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.overhead",
        description="Bound the cost of disabled telemetry against compile time.",
    )
    parser.add_argument("--stencil", default="jacobi_2d")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--samples", type=int, default=DEFAULT_SAMPLES)
    parser.add_argument(
        "--limit", type=float, default=DEFAULT_LIMIT, metavar="FRACTION",
        help="maximum allowed overhead fraction (default: 0.02 = 2%%)",
    )
    args = parser.parse_args(argv)
    if args.limit <= 0:
        print("error: --limit must be positive", file=sys.stderr)
        return 2
    measured = measure_overhead(
        stencil=args.stencil, repeats=args.repeats, samples=args.samples
    )
    print(
        f"compile wall (disabled) : {measured['compile_wall_s'] * 1e3:.3f} ms\n"
        f"spans per compile       : {measured['spans_per_compile']:.0f}\n"
        f"disabled span cost      : {measured['span_cost_s'] * 1e9:.0f} ns\n"
        f"overhead fraction       : {measured['overhead_fraction']:.4%} "
        f"(limit {args.limit:.2%})"
    )
    if measured["overhead_fraction"] >= args.limit:
        print("FAIL: disabled-telemetry overhead exceeds the bound", file=sys.stderr)
        return 1
    print("OK: disabled-telemetry overhead is within the bound")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
