"""C stencil front end — from Figure-1-style loop nests to :class:`StencilProgram`.

The front end stands in for the pet/clang pipeline the paper's tool chain is
built on: it accepts ordinary C stencil code — an outer time loop enclosing
one or more perfectly nested spatial loop nests with double-buffered
(``A[(t+1)%2][i][j]``) or time-offset (``A[t-1][i]``) accesses, ``#pragma
ivdep``, float constants and intrinsic calls such as ``sqrtf`` — and produces
the same :class:`~repro.model.program.StencilProgram` IR the hand-built
library stencils use, ready for hybrid tiling, code generation, validation
and simulation::

    from repro.frontend import parse_stencil

    program = parse_stencil('''
        /* jacobi_1d */
        #define T 64
        #define N 1024
        float A[2][N];
        for (t = 0; t < T; t++)
          for (i = 1; i < N - 1; i++)
            A[(t+1)%2][i] = 0.33f * (A[t%2][i-1] + A[t%2][i] + A[t%2][i+1]);
    ''')

Everything outside the supported fragment is rejected with a source-located
:class:`FrontendError` (line, column and a caret snippet) — see
:mod:`repro.frontend.errors`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.frontend.analyze import analyze_program, resolve_extents
from repro.frontend.errors import (
    FrontendError,
    StencilSemanticError,
    StencilSyntaxError,
)
from repro.frontend.lower import lower_stencil
from repro.frontend.parser import parse_source
from repro.model.program import StencilProgram


def parse_stencil(
    source: str,
    *,
    name: str | None = None,
    sizes: Sequence[int] | None = None,
    time_steps: int | None = None,
    filename: str | None = None,
) -> StencilProgram:
    """Parse Figure-1-style C stencil code into a :class:`StencilProgram`.

    Parameters
    ----------
    source:
        The C source text.
    name:
        Program name; defaults to a leading ``/* name */`` comment, then
        ``"stencil"``.
    sizes:
        Concrete grid extents, overriding ``#define``/declaration extents in
        the source (required when the source leaves the bounds symbolic).
    time_steps:
        Number of time iterations, overriding the source.
    filename:
        Display name used in diagnostics.

    Raises
    ------
    FrontendError
        With precise line/column information and a caret snippet when the
        source is malformed or falls outside the supported stencil fragment.
    """
    program = parse_source(source, filename)
    analyzed = analyze_program(program, source, filename)
    resolved_sizes, resolved_steps = resolve_extents(
        analyzed,
        tuple(int(s) for s in sizes) if sizes is not None else None,
        time_steps,
    )
    # Keep the original text only when it still describes the program: if an
    # explicit sizes/time_steps override changed anything, the source's
    # #defines would be stale, so drop it and let c_source() regenerate a
    # faithful form.
    keep_source = True
    if sizes is not None or time_steps is not None:
        try:
            self_resolved = resolve_extents(analyzed, None, None)
        except FrontendError:
            keep_source = False
        else:
            keep_source = self_resolved == (resolved_sizes, resolved_steps)
    return lower_stencil(
        analyzed, resolved_sizes, resolved_steps, name=name, keep_source=keep_source
    )


def parse_stencil_file(
    path: str,
    *,
    name: str | None = None,
    sizes: Sequence[int] | None = None,
    time_steps: int | None = None,
) -> StencilProgram:
    """Read ``path`` and parse it with :func:`parse_stencil`."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return parse_stencil(
        source, name=name, sizes=sizes, time_steps=time_steps, filename=path
    )


__all__ = [
    "FrontendError",
    "StencilSemanticError",
    "StencilSyntaxError",
    "parse_stencil",
    "parse_stencil_file",
]
