"""Concrete syntax tree of the Figure-1-style C dialect.

The parser builds these nodes; :mod:`repro.frontend.analyze` interprets them
as a stencil (loop bounds become margins, first subscripts become time
offsets) and :mod:`repro.frontend.lower` turns the bodies into
:mod:`repro.model.expr` trees.  Every node remembers the ``(line, column)``
of its first token so later stages can point diagnostics at the source.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Location:
    """1-based source position of a node's first token."""

    line: int
    column: int


# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class CExpr:
    """Base class for expression nodes."""

    loc: Location


@dataclass(frozen=True)
class CNumber(CExpr):
    """An integer or floating point literal (``1``, ``0.2f``, ``1e-3``)."""

    value: float | int
    is_float: bool

    def describe(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class CName(CExpr):
    """An identifier used as an expression (loop variable, defined constant)."""

    name: str

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class CUnary(CExpr):
    """A unary operation (only ``-`` is produced)."""

    op: str
    operand: CExpr

    def describe(self) -> str:
        return f"{self.op}{self.operand.describe()}"


@dataclass(frozen=True)
class CBinary(CExpr):
    """A binary arithmetic operation, including ``%`` in time subscripts."""

    op: str
    lhs: CExpr
    rhs: CExpr

    def describe(self) -> str:
        return f"{self.lhs.describe()} {self.op} {self.rhs.describe()}"


@dataclass(frozen=True)
class CCall(CExpr):
    """A function call such as ``sqrtf(x)``."""

    name: str
    args: tuple[CExpr, ...]

    def describe(self) -> str:
        return f"{self.name}({', '.join(a.describe() for a in self.args)})"


@dataclass(frozen=True)
class CArrayRef(CExpr):
    """An array access ``A[(t+1)%2][i][j+1]`` (read or write target)."""

    name: str
    subscripts: tuple[CExpr, ...]

    def describe(self) -> str:
        return self.name + "".join(f"[{s.describe()}]" for s in self.subscripts)


# -- statements ----------------------------------------------------------------


@dataclass(frozen=True)
class CAssign:
    """An assignment statement ``A[...] = expr;``."""

    target: CArrayRef
    value: CExpr
    loc: Location


@dataclass(frozen=True)
class CFor:
    """A ``for`` loop with the canonical ``var = lo; var < hi; var++`` header.

    ``ivdep`` records whether a ``#pragma ivdep`` immediately preceded the
    loop.  ``body`` is the ordered list of :class:`CFor` / :class:`CAssign`
    nodes directly inside the loop.
    """

    var: str
    lower: CExpr
    upper: CExpr
    body: tuple[object, ...]
    ivdep: bool
    loc: Location


@dataclass(frozen=True)
class CDecl:
    """An array declaration ``float A[2][N][N];`` (extents may be symbolic)."""

    ctype: str
    name: str
    extents: tuple[CExpr, ...]
    loc: Location


@dataclass(frozen=True)
class CProgram:
    """A whole translation unit: defines, declarations, one time loop."""

    defines: dict[str, int] = field(default_factory=dict)
    decls: tuple[CDecl, ...] = ()
    time_loop: CFor | None = None
    name_hint: str | None = None
