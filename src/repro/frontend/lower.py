"""Lowering from the analyzed C syntax tree to the :mod:`repro.model` IR.

Each innermost assignment becomes a :class:`~repro.model.program.StencilStatement`
whose margins come from its nest's loop bounds and whose body is rebuilt as a
:mod:`repro.model.expr` tree.  Time offsets are computed *relative to the
statement's own write index*: a write to ``A[(t+1)%2]`` reading ``A[t%2]``
and a write to ``A[t]`` reading ``A[t-1]`` both produce ``time_offset == 1``.

Structurally identical subexpressions are hash-consed into one shared
instance, mirroring the common-subexpression convention of
:func:`repro.model.expr.count_flops`: a source body that spells
``(A[t-1][i] - A[t-1][i-1]) * (A[t-1][i] - A[t-1][i-1])`` counts the
difference once, exactly as the hand-built library programs (and the code
generator, which emits it into a register) do.
"""

from __future__ import annotations

from repro.frontend.analyze import AnalyzedStencil, Analyzer, Nest, TimeIndex
from repro.frontend.ast import (
    CArrayRef,
    CAssign,
    CBinary,
    CCall,
    CExpr,
    CName,
    CNumber,
    CProgram,
    CUnary,
)
from repro.frontend.errors import StencilSemanticError
from repro.model.expr import BinOp, Call, Constant, Expr, FieldRead
from repro.model.program import StencilProgram, StencilStatement

# Arity of the supported math intrinsics (keys mirror expr._CALL_TABLE).
_INTRINSICS = {
    "sqrtf": 1,
    "sqrt": 1,
    "fabsf": 1,
    "fabs": 1,
    "expf": 1,
    "fminf": 2,
    "fmaxf": 2,
}


class _Interner:
    """Hash-cons structurally equal expression nodes into one instance."""

    def __init__(self) -> None:
        self._cache: dict[Expr, Expr] = {}

    def __call__(self, node: Expr) -> Expr:
        return self._cache.setdefault(node, node)


class _Lowerer:
    def __init__(self, analyzed: AnalyzedStencil) -> None:
        self.analyzed = analyzed
        # Re-use the analyzer's subscript classifiers (and its diagnostics).
        self.classify = Analyzer(
            CProgram(defines=analyzed.defines), analyzed.source, analyzed.filename
        )
        self.intern = _Interner()

    def _error(self, message: str, expr: CExpr | CAssign):
        loc = expr.loc
        raise StencilSemanticError(
            message, self.analyzed.source, loc.line, loc.column, self.analyzed.filename
        )

    # -- statement lowering --------------------------------------------------

    def _write_index(self, assign: CAssign, nest: Nest) -> tuple[str, TimeIndex]:
        target = assign.target
        ndim = len(nest.loops)
        if len(target.subscripts) != ndim + 1:
            self._error(
                f"write to {target.name!r} has {len(target.subscripts)} "
                f"subscripts, expected 1 temporal + {ndim} spatial",
                target,
            )
        write_time = self.classify.time_index(
            target.subscripts[0], self.analyzed.time_var
        )
        for d, (subscript, loop) in enumerate(
            zip(target.subscripts[1:], nest.loops)
        ):
            offset = self.classify.spatial_offset(subscript, loop.var, d)
            if offset != 0:
                self._error(
                    f"stencil statements must write the current point; "
                    f"'{subscript.describe()}' has offset {offset}",
                    subscript,
                )
        return target.name, write_time

    def _read(
        self,
        ref: CArrayRef,
        nest: Nest,
        write_time: TimeIndex,
        target: str,
        written_before: set[str],
    ) -> FieldRead:
        ndim = len(nest.loops)
        if len(ref.subscripts) != ndim + 1:
            self._error(
                f"read of {ref.name!r} has {len(ref.subscripts)} subscripts, "
                f"expected 1 temporal + {ndim} spatial",
                ref,
            )
        read_time = self.classify.time_index(ref.subscripts[0], self.analyzed.time_var)
        if (read_time.modulus is None) != (write_time.modulus is None):
            self._error(
                f"read of {ref.name!r} mixes time indexing styles with the "
                f"write (write uses "
                f"'{write_time.describe(self.analyzed.time_var)}', read uses "
                f"'{read_time.describe(self.analyzed.time_var)}')",
                ref.subscripts[0],
            )
        if read_time.modulus is not None and read_time.modulus != write_time.modulus:
            self._error(
                f"read of {ref.name!r} uses modulus {read_time.modulus} but "
                f"the write uses {write_time.modulus}",
                ref.subscripts[0],
            )
        offset = write_time.shift - read_time.shift
        if offset < 0:
            self._error(
                f"read of {ref.name!r} at time "
                f"'{read_time.describe(self.analyzed.time_var)}' is later than "
                f"the write at "
                f"'{write_time.describe(self.analyzed.time_var)}' (reads from "
                "the future are not causal)",
                ref.subscripts[0],
            )
        if write_time.modulus is not None and offset >= write_time.modulus:
            self._error(
                f"time offset {offset} cannot be expressed with a "
                f"{write_time.modulus}-deep rotating buffer",
                ref.subscripts[0],
            )
        if offset == 0 and ref.name not in written_before:
            hint = (
                "it reads its own statement's output"
                if ref.name == target
                else "no earlier statement in the time loop writes it"
            )
            self._error(
                f"read of {ref.name!r} at the write's own time index, but "
                f"{hint}",
                ref.subscripts[0],
            )
        offsets = tuple(
            self.classify.spatial_offset(subscript, loop.var, d)
            for d, (subscript, loop) in enumerate(zip(ref.subscripts[1:], nest.loops))
        )
        return FieldRead(ref.name, offsets, offset)

    def _expr(
        self,
        expr: CExpr,
        nest: Nest,
        write_time: TimeIndex,
        target: str,
        written_before: set[str],
    ) -> Expr:
        lower = lambda e: self._expr(e, nest, write_time, target, written_before)
        if isinstance(expr, CNumber):
            return self.intern(Constant(float(expr.value)))
        if isinstance(expr, CName):
            if expr.name in self.analyzed.defines:
                return self.intern(Constant(float(self.analyzed.defines[expr.name])))
            self._error(
                f"unknown identifier {expr.name!r} in a statement body "
                "(only array reads, literals, defined constants and intrinsic "
                "calls are allowed)",
                expr,
            )
        if isinstance(expr, CUnary):
            operand = expr.operand
            if isinstance(operand, CNumber):
                return self.intern(Constant(-float(operand.value)))
            return self.intern(
                BinOp("-", self.intern(Constant(0.0)), lower(operand))
            )
        if isinstance(expr, CBinary):
            if expr.op == "%":
                self._error(
                    "'%' is only supported inside time subscripts", expr
                )
            return self.intern(BinOp(expr.op, lower(expr.lhs), lower(expr.rhs)))
        if isinstance(expr, CCall):
            arity = _INTRINSICS.get(expr.name)
            if arity is None:
                supported = ", ".join(sorted(_INTRINSICS))
                self._error(
                    f"unknown function {expr.name!r} (supported intrinsics: "
                    f"{supported})",
                    expr,
                )
            if len(expr.args) != arity:
                self._error(
                    f"{expr.name} takes {arity} argument(s), got {len(expr.args)}",
                    expr,
                )
            args = tuple(lower(arg) for arg in expr.args)
            return self.intern(Call(expr.name, args))
        if isinstance(expr, CArrayRef):
            return self.intern(
                self._read(expr, nest, write_time, target, written_before)
            )
        raise AssertionError(f"unexpected expression node {expr!r}")

    # -- program lowering ----------------------------------------------------

    def lower(
        self,
        sizes: tuple[int, ...],
        time_steps: int,
        name: str | None = None,
        keep_source: bool = True,
    ) -> StencilProgram:
        statements: list[StencilStatement] = []
        written_before: set[str] = set()
        index = 0
        for nest in self.analyzed.nests:
            lower_margin = tuple(loop.lower_margin for loop in nest.loops)
            upper_margin = tuple(loop.upper_margin for loop in nest.loops)
            for assign in nest.assigns:
                target, write_time = self._write_index(assign, nest)
                expr = self._expr(
                    assign.value, nest, write_time, target, written_before
                )
                statements.append(
                    StencilStatement(
                        name=f"S{index}",
                        target=target,
                        expr=expr,
                        lower_margin=lower_margin,
                        upper_margin=upper_margin,
                    )
                )
                written_before.add(target)
                index += 1
        return StencilProgram(
            name=name or self.analyzed.name,
            space_dims=self.analyzed.nests[0].loop_vars,
            sizes=sizes,
            time_steps=time_steps,
            statements=statements,
            source=self.analyzed.source if keep_source else None,
        )


def lower_stencil(
    analyzed: AnalyzedStencil,
    sizes: tuple[int, ...],
    time_steps: int,
    name: str | None = None,
    keep_source: bool = True,
) -> StencilProgram:
    """Lower an analyzed stencil to a :class:`StencilProgram`.

    ``keep_source=False`` drops the original text so
    :meth:`StencilProgram.c_source` regenerates a form that reflects the
    actual (possibly overridden) sizes and time steps.
    """
    return _Lowerer(analyzed).lower(sizes, time_steps, name, keep_source)
