"""SCoP-style semantic analysis of a parsed stencil (Section 3.2).

The parser accepts any well-formed loop nest; this module checks that the
program actually is a stencil the tool chain supports — an outer time loop
containing one or more *perfectly nested* spatial loop nests whose bounds are
``const`` / ``N - const`` (margins) and whose array subscripts are a
recognised time index followed by ``var ± const`` spatial offsets — and
extracts the structure the lowering needs.  Everything outside that fragment
is rejected with a :class:`~repro.frontend.errors.StencilSemanticError`
pointing at the offending token:

* non-affine subscripts (``A[t][i*i]``, ``A[t][B[i]]``),
* imperfect loop nests (a statement next to a nested loop),
* data-dependent loop bounds (``i < A[0][j]``),
* unrecognised time indices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.ast import (
    CArrayRef,
    CAssign,
    CBinary,
    CCall,
    CDecl,
    CExpr,
    CFor,
    CName,
    CNumber,
    CProgram,
    CUnary,
    Location,
)
from repro.frontend.errors import StencilSemanticError


@dataclass(frozen=True)
class TimeIndex:
    """A temporal subscript ``t + shift`` (optionally taken ``% modulus``)."""

    shift: int
    modulus: int | None = None

    def describe(self, time_var: str = "t") -> str:
        if self.shift == 0:
            base = time_var
        elif self.shift > 0:
            base = f"{time_var}+{self.shift}"
        else:
            base = f"{time_var}-{-self.shift}"
        if self.modulus is None:
            return base
        return f"({base})%{self.modulus}"


@dataclass(frozen=True)
class LoopDim:
    """One spatial loop of a nest: ``for (var = lower; var < size - margin)``.

    ``size`` is either the symbolic bound name (``"N0"``) or a concrete
    integer when the source used a literal bound.
    """

    var: str
    lower_margin: int
    size: str | int
    upper_margin: int
    ivdep: bool
    loc: Location


@dataclass(frozen=True)
class Nest:
    """A perfectly nested spatial loop nest and its innermost assignments."""

    loops: tuple[LoopDim, ...]
    assigns: tuple[CAssign, ...]
    loc: Location

    @property
    def loop_vars(self) -> tuple[str, ...]:
        return tuple(loop.var for loop in self.loops)


@dataclass
class AnalyzedStencil:
    """The validated structure of a stencil source file."""

    source: str
    filename: str | None
    name: str
    defines: dict[str, int]
    decls: tuple[CDecl, ...]
    time_var: str
    time_lower: int
    time_upper_symbol: str | None
    time_upper_value: int | None
    time_upper_loc: Location
    nests: tuple[Nest, ...]

    @property
    def ndim(self) -> int:
        return len(self.nests[0].loops)


class Analyzer:
    """Check and summarise one parsed program."""

    def __init__(self, program: CProgram, source: str, filename: str | None = None):
        self.program = program
        self.source = source
        self.filename = filename
        self.defines = dict(program.defines)

    def _error(self, message: str, loc: Location):
        raise StencilSemanticError(
            message, self.source, loc.line, loc.column, self.filename
        )

    # -- small expression classifiers ---------------------------------------

    def _const_int(self, expr: CExpr) -> int | None:
        """Evaluate an expression of integer literals and defined names."""
        if isinstance(expr, CNumber) and not expr.is_float:
            return int(expr.value)
        if isinstance(expr, CName) and expr.name in self.defines:
            return self.defines[expr.name]
        if isinstance(expr, CUnary) and expr.op == "-":
            inner = self._const_int(expr.operand)
            return None if inner is None else -inner
        return None

    def _contains_array_ref(self, expr: CExpr) -> CArrayRef | None:
        if isinstance(expr, CArrayRef):
            return expr
        if isinstance(expr, CBinary):
            return self._contains_array_ref(expr.lhs) or self._contains_array_ref(
                expr.rhs
            )
        if isinstance(expr, CUnary):
            return self._contains_array_ref(expr.operand)
        if isinstance(expr, CCall):
            for arg in expr.args:
                found = self._contains_array_ref(arg)
                if found:
                    return found
        return None

    # -- loop bounds ---------------------------------------------------------

    def _lower_margin(self, expr: CExpr) -> int:
        value = self._const_int(expr)
        if value is None:
            if self._contains_array_ref(expr):
                self._error(
                    f"data-dependent loop bound '{expr.describe()}'", expr.loc
                )
            self._error(
                f"loop lower bound must be a constant, got '{expr.describe()}'",
                expr.loc,
            )
        if value < 0:
            self._error("loop lower bound must be non-negative", expr.loc)
        return value

    def _upper_bound(self, expr: CExpr) -> tuple[str | int, int]:
        """Classify an upper bound as ``(size, margin)`` from ``size - margin``."""
        if self._contains_array_ref(expr):
            self._error(f"data-dependent loop bound '{expr.describe()}'", expr.loc)
        if isinstance(expr, CName):
            return expr.name, 0
        if isinstance(expr, CNumber) and not expr.is_float:
            return int(expr.value), 0
        if isinstance(expr, CBinary) and expr.op == "-":
            margin = self._const_int(expr.rhs)
            if margin is not None and margin >= 0:
                if isinstance(expr.lhs, CName) and expr.lhs.name not in self.defines:
                    return expr.lhs.name, margin
                size = self._const_int(expr.lhs)
                if size is not None:
                    return size, margin
        self._error(
            f"unsupported loop bound '{expr.describe()}' "
            "(expected 'N' or 'N - c' with constant c)",
            expr.loc,
        )
        raise AssertionError("unreachable")

    # -- subscripts ----------------------------------------------------------

    def time_index(self, expr: CExpr, time_var: str) -> TimeIndex:
        """Classify a temporal subscript: ``t``, ``t±c`` or ``(t±c)%m``."""
        if isinstance(expr, CBinary) and expr.op == "%":
            modulus = self._const_int(expr.rhs)
            if modulus is None or modulus < 2:
                self._error(
                    f"time subscript modulus must be a constant >= 2, "
                    f"got '{expr.rhs.describe()}'",
                    expr.rhs.loc,
                )
            base = self.time_index(expr.lhs, time_var)
            if base.modulus is not None:
                self._error("nested '%' in time subscript", expr.loc)
            return TimeIndex(base.shift, modulus)
        if isinstance(expr, CName):
            if expr.name == time_var:
                return TimeIndex(0)
            self._error(
                f"time subscript uses {expr.name!r} but the time loop "
                f"variable is {time_var!r}",
                expr.loc,
            )
        if isinstance(expr, CBinary) and expr.op in ("+", "-"):
            shift = self._const_int(expr.rhs)
            if (
                shift is not None
                and isinstance(expr.lhs, CName)
                and expr.lhs.name == time_var
            ):
                return TimeIndex(shift if expr.op == "+" else -shift)
            # also accept 'c + t'
            shift = self._const_int(expr.lhs)
            if (
                shift is not None
                and expr.op == "+"
                and isinstance(expr.rhs, CName)
                and expr.rhs.name == time_var
            ):
                return TimeIndex(shift)
        self._error(
            f"unrecognised time subscript '{expr.describe()}' "
            f"(expected '{time_var}', '{time_var}-c' or '({time_var}+c)%m')",
            expr.loc,
        )
        raise AssertionError("unreachable")

    def spatial_offset(self, expr: CExpr, var: str, dim: int) -> int:
        """Classify a spatial subscript as ``var ± const``."""
        if isinstance(expr, CName):
            if expr.name == var:
                return 0
            self._error(
                f"subscript of dimension {dim} uses {expr.name!r} but the "
                f"loop variable for that dimension is {var!r}",
                expr.loc,
            )
        if isinstance(expr, CBinary) and expr.op in ("+", "-"):
            offset = self._const_int(expr.rhs)
            if (
                offset is not None
                and isinstance(expr.lhs, CName)
                and expr.lhs.name == var
            ):
                return offset if expr.op == "+" else -offset
            offset = self._const_int(expr.lhs)
            if (
                offset is not None
                and expr.op == "+"
                and isinstance(expr.rhs, CName)
                and expr.rhs.name == var
            ):
                return offset
        array = self._contains_array_ref(expr)
        if array is not None:
            self._error(
                f"non-affine subscript '{expr.describe()}' "
                "(indices may not depend on array contents)",
                expr.loc,
            )
        self._error(
            f"non-affine subscript '{expr.describe()}' "
            f"(expected '{var}' or '{var} ± c' with constant c)",
            expr.loc,
        )
        raise AssertionError("unreachable")

    # -- nest structure ------------------------------------------------------

    def _collect_nest(self, outer: CFor) -> Nest:
        loops: list[LoopDim] = []
        node = outer
        while True:
            size, upper_margin = self._upper_bound(node.upper)
            loops.append(
                LoopDim(
                    var=node.var,
                    lower_margin=self._lower_margin(node.lower),
                    size=size,
                    upper_margin=upper_margin,
                    ivdep=node.ivdep,
                    loc=node.loc,
                )
            )
            fors = [item for item in node.body if isinstance(item, CFor)]
            assigns = [item for item in node.body if isinstance(item, CAssign)]
            if fors and assigns:
                self._error(
                    "imperfect loop nest: statement at the same depth as a "
                    "nested loop (split it into its own loop nest under the "
                    "time loop)",
                    assigns[0].loc,
                )
            if len(fors) > 1:
                self._error(
                    "imperfect loop nest: two loops at the same depth (split "
                    "them into separate loop nests under the time loop)",
                    fors[1].loc,
                )
            if fors:
                node = fors[0]
                continue
            if not assigns:
                self._error("empty innermost loop body", node.loc)
            seen_vars = [loop.var for loop in loops]
            if len(set(seen_vars)) != len(seen_vars):
                self._error(
                    f"duplicate loop variable in nest {seen_vars}", outer.loc
                )
            return Nest(loops=tuple(loops), assigns=tuple(assigns), loc=outer.loc)

    def analyze(self) -> AnalyzedStencil:
        time_loop = self.program.time_loop
        assert time_loop is not None  # guaranteed by the parser
        time_lower = self._lower_margin(time_loop.lower)

        upper = time_loop.upper
        upper_symbol: str | None = None
        upper_value = self._const_int(upper)
        if upper_value is None:
            if isinstance(upper, CName):
                upper_symbol = upper.name
            else:
                if self._contains_array_ref(upper):
                    self._error(
                        f"data-dependent time loop bound '{upper.describe()}'",
                        upper.loc,
                    )
                self._error(
                    f"time loop bound must be a constant or a single symbol, "
                    f"got '{upper.describe()}'",
                    upper.loc,
                )

        nests: list[Nest] = []
        for item in time_loop.body:
            if isinstance(item, CFor):
                nests.append(self._collect_nest(item))
            elif isinstance(item, CAssign):
                self._error(
                    "statement directly inside the time loop (every statement "
                    "must sit in a spatial loop nest)",
                    item.loc,
                )
            else:  # pragma: no cover - parser only produces CFor/CAssign
                raise AssertionError(f"unexpected node {item!r}")
        if not nests:
            self._error("the time loop contains no spatial loop nest", time_loop.loc)
        ndim = len(nests[0].loops)
        for nest in nests[1:]:
            if len(nest.loops) != ndim:
                self._error(
                    f"loop nests disagree on dimensionality: first nest has "
                    f"{ndim} spatial loops, this one has {len(nest.loops)}",
                    nest.loc,
                )
        return AnalyzedStencil(
            source=self.source,
            filename=self.filename,
            name=self.program.name_hint or "stencil",
            defines=self.defines,
            decls=self.program.decls,
            time_var=time_loop.var,
            time_lower=time_lower,
            time_upper_symbol=upper_symbol,
            time_upper_value=upper_value,
            time_upper_loc=upper.loc,
            nests=tuple(nests),
        )


def analyze_program(
    program: CProgram, source: str, filename: str | None = None
) -> AnalyzedStencil:
    """Run semantic analysis on a parsed program."""
    return Analyzer(program, source, filename).analyze()


# -- extent resolution ---------------------------------------------------------


def resolve_extents(
    analyzed: AnalyzedStencil,
    sizes: tuple[int, ...] | None = None,
    time_steps: int | None = None,
) -> tuple[tuple[int, ...], int]:
    """Resolve symbolic grid sizes and the number of time steps.

    Resolution order for each spatial dimension: the explicit ``sizes``
    argument, a ``#define`` for the bound symbol, a literal loop bound, or a
    numeric extent in an array declaration (the last ``ndim`` extents of a
    declaration with ``ndim + 1`` extents).  The same symbol used for two
    dimensions must resolve to the same extent.
    """

    def _fail(message: str, loc: Location):
        raise StencilSemanticError(
            message, analyzed.source, loc.line, loc.column, analyzed.filename
        )

    ndim = analyzed.ndim
    # Symbols used per dimension, with a representative location each.
    dim_symbols: list[dict[str, Location]] = [dict() for _ in range(ndim)]
    dim_literals: list[int | None] = [None] * ndim
    for nest in analyzed.nests:
        for d, loop in enumerate(nest.loops):
            if isinstance(loop.size, str):
                dim_symbols[d].setdefault(loop.size, loop.loc)
            else:
                if dim_literals[d] is not None and dim_literals[d] != loop.size:
                    _fail(
                        f"dimension {d} has conflicting literal extents "
                        f"{dim_literals[d]} and {loop.size}",
                        loop.loc,
                    )
                dim_literals[d] = loop.size

    # Candidate values contributed by array declarations.
    decl_values: list[int | None] = [None] * ndim
    for decl in analyzed.decls:
        if len(decl.extents) != ndim + 1:
            continue
        for d, extent in enumerate(decl.extents[1:]):
            value: int | None = None
            if isinstance(extent, CNumber) and not extent.is_float:
                value = int(extent.value)
            elif isinstance(extent, CName) and extent.name in analyzed.defines:
                value = analyzed.defines[extent.name]
            if value is not None:
                decl_values[d] = value

    symbol_values: dict[str, int] = {}

    def _bind(symbol: str, value: int, loc: Location) -> None:
        if symbol in symbol_values and symbol_values[symbol] != value:
            _fail(
                f"size symbol {symbol!r} would need two different extents "
                f"({symbol_values[symbol]} and {value})",
                loc,
            )
        symbol_values[symbol] = value

    resolved: list[int] = []
    if sizes is not None:
        if len(sizes) != ndim:
            _fail(
                f"this stencil is {ndim}-D but {len(sizes)} sizes were given: "
                f"{tuple(sizes)}",
                analyzed.nests[0].loc,
            )
        for d, value in enumerate(sizes):
            for symbol, loc in dim_symbols[d].items():
                _bind(symbol, int(value), loc)
            resolved.append(int(value))
    else:
        for d in range(ndim):
            value: int | None = None
            for symbol, loc in dim_symbols[d].items():
                if symbol in analyzed.defines:
                    value = analyzed.defines[symbol]
                    _bind(symbol, value, loc)
            if value is None:
                value = dim_literals[d]
            if value is None:
                value = decl_values[d]
            if value is None:
                symbols = ", ".join(dim_symbols[d]) or "<none>"
                loc = next(iter(dim_symbols[d].values()), analyzed.nests[0].loc)
                _fail(
                    f"cannot determine the extent of dimension {d} (symbol "
                    f"{symbols}); pass sizes=... to parse_stencil or add "
                    f"'#define {symbols or 'N'} <extent>'",
                    loc,
                )
            for symbol, loc in dim_symbols[d].items():
                _bind(symbol, value, loc)
            resolved.append(value)

    if time_steps is not None:
        steps = int(time_steps)
    elif analyzed.time_upper_value is not None:
        steps = analyzed.time_upper_value - analyzed.time_lower
    elif (
        analyzed.time_upper_symbol is not None
        and analyzed.time_upper_symbol in analyzed.defines
    ):
        steps = analyzed.defines[analyzed.time_upper_symbol] - analyzed.time_lower
    else:
        _fail(
            f"cannot determine the number of time steps (symbol "
            f"{analyzed.time_upper_symbol!r}); pass time_steps=... to "
            f"parse_stencil or add '#define {analyzed.time_upper_symbol} <steps>'",
            analyzed.time_upper_loc,
        )
    if steps <= 0:
        _fail("the time loop runs zero times", analyzed.time_upper_loc)
    return tuple(resolved), steps
