"""Source-located diagnostics for the C stencil front end.

Every error the front end raises carries the offending source text and a
``(line, column)`` position (both 1-based) and renders itself as a compiler
style message with a caret snippet::

    examples/custom_stencil.c:4:14: error: non-affine subscript 'i * i'
          A[t][i * i] = 0.5f * A[t-1][i][j];
               ^

The two concrete classes distinguish the stage that rejected the input:
:class:`StencilSyntaxError` for lexical/grammatical problems,
:class:`StencilSemanticError` for programs that parse but fall outside the
supported fragment (non-affine subscripts, imperfect nests, data dependent
bounds, ...).
"""

from __future__ import annotations


class FrontendError(Exception):
    """Base class for all front end diagnostics.

    Parameters
    ----------
    message:
        The diagnostic text (without location prefix).
    source:
        The complete source text being compiled (used for the snippet).
    line / column:
        1-based position of the offending token.
    filename:
        Optional display name used in the location prefix.
    """

    stage = "error"

    def __init__(
        self,
        message: str,
        source: str = "",
        line: int = 0,
        column: int = 0,
        filename: str | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.source = source
        self.line = line
        self.column = column
        self.filename = filename or "<stencil>"

    def snippet(self) -> str:
        """The offending source line with a caret under the error column."""
        if not self.source or self.line <= 0:
            return ""
        lines = self.source.splitlines()
        if self.line > len(lines):
            return ""
        text = lines[self.line - 1]
        caret = " " * max(self.column - 1, 0) + "^"
        return f"{text}\n{caret}"

    def pretty(self) -> str:
        """Full compiler-style rendering: location, message, caret snippet."""
        location = f"{self.filename}:{self.line}:{self.column}: " if self.line else ""
        head = f"{location}{self.stage}: {self.message}"
        snippet = self.snippet()
        return f"{head}\n{snippet}" if snippet else head

    def __str__(self) -> str:
        return self.pretty()


class StencilSyntaxError(FrontendError):
    """The input is not lexically/grammatically valid Figure-1-style C."""

    stage = "syntax error"


class StencilSemanticError(FrontendError):
    """The input parses but is outside the supported stencil fragment."""

    stage = "error"
