"""Tokenizer for the Figure-1-style C stencil dialect.

The lexer understands exactly what the front end's grammar needs: identifiers,
integer and float literals (with the C ``f`` suffix and exponent notation),
the punctuation of loop nests and arithmetic expressions, ``//`` and
``/* ... */`` comments, and the two preprocessor directives the dialect
admits — ``#define NAME value`` and ``#pragma ivdep``.

Comments are skipped but recorded (in order) so the parser can use a leading
``/* name */`` comment as the program name.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.errors import StencilSyntaxError

# Multi-character operators first so maximal munch works by construction.
_PUNCTUATION = (
    "++",
    "+=",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ";",
    ",",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
)

KEYWORDS = frozenset({"for", "float", "double", "int", "void"})


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position.

    ``kind`` is ``"ident"``, ``"number"``, ``"keyword"``, ``"pragma"``,
    ``"define"``, ``"eof"`` or the punctuation text itself (``"("`` ...).
    ``value`` holds the identifier text, the numeric value, the pragma text or
    the ``(name, value)`` pair of a define.
    """

    kind: str
    value: object
    line: int
    column: int
    text: str

    def describe(self) -> str:
        if self.kind == "eof":
            return "end of input"
        return f"{self.text!r}"


class Lexer:
    """Tokenize a source string; positions are tracked for diagnostics."""

    def __init__(self, source: str, filename: str | None = None) -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1
        self.comments: list[str] = []

    # -- low-level helpers ---------------------------------------------------

    def _error(self, message: str, line: int | None = None, column: int | None = None):
        raise StencilSyntaxError(
            message,
            self.source,
            line if line is not None else self.line,
            column if column is not None else self.column,
            self.filename,
        )

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                start = self.pos
                while self.pos < len(self.source) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.source):
                    self._error("unterminated comment", start_line, start_col)
                self.comments.append(self.source[start : self.pos].strip())
                self._advance(2)
            else:
                return

    # -- token producers -----------------------------------------------------

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in ("+", "-") and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        if self._peek() in ("f", "F"):
            is_float = True
            self._advance()
        value: object = float(text) if is_float else int(text)
        return Token("number", value, line, column, text)

    def _lex_ident(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = "keyword" if text in KEYWORDS else "ident"
        return Token(kind, text, line, column, text)

    def _lex_directive(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # '#'
        word = self._lex_ident()
        if word.value == "pragma":
            start = self.pos
            while self.pos < len(self.source) and self._peek() != "\n":
                self._advance()
            text = self.source[start : self.pos].strip()
            if text != "ivdep":
                self._error(f"unsupported pragma {text!r} (only 'ivdep')", line, column)
            return Token("pragma", text, line, column, f"#pragma {text}")
        if word.value == "define":
            self._skip_trivia()
            name = self._lex_ident()
            if name.kind != "ident":
                self._error("expected a name after '#define'", name.line, name.column)
            self._skip_trivia()
            number = self._lex_number() if self._peek().isdigit() else None
            if number is None:
                self._error(
                    f"expected an integer value for '#define {name.value}'",
                    self.line,
                    self.column,
                )
            return Token(
                "define",
                (name.value, number.value),
                line,
                column,
                f"#define {name.value} {number.text}",
            )
        self._error(f"unsupported directive '#{word.value}'", line, column)
        raise AssertionError("unreachable")

    def next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token("eof", None, self.line, self.column, "")
        ch = self._peek()
        if ch == "#":
            return self._lex_directive()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_ident()
        for punct in _PUNCTUATION:
            if self.source.startswith(punct, self.pos):
                line, column = self.line, self.column
                self._advance(len(punct))
                return Token(punct, punct, line, column, punct)
        self._error(f"unexpected character {ch!r}")
        raise AssertionError("unreachable")

    def tokenize(self) -> list[Token]:
        """All tokens up to and including the terminating EOF token."""
        tokens = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind == "eof":
                return tokens


def tokenize(source: str, filename: str | None = None) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
