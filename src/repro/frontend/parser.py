"""Recursive-descent parser for the Figure-1-style C stencil dialect.

Grammar (informally)::

    program   := define* decl* for
    define    := '#define' IDENT INT
    decl      := ('float'|'double'|'int') IDENT ('[' expr ']')+ ';'
    for       := '#pragma ivdep'? 'for' '(' IDENT '=' expr ';'
                 IDENT '<' expr ';' step ')' body
    step      := IDENT '++' | IDENT '+=' INT | IDENT '=' IDENT '+' INT
    body      := '{' (for | assign)* '}' | for | assign
    assign    := arrayref '=' expr ';'
    arrayref  := IDENT ('[' expr ']')+
    expr      := additive with the usual precedence over '+-' '*/%',
                 unary '-', parentheses, calls and array references

The parser is purely syntactic: it accepts any well-formed loop nest and
leaves the stencil-specific restrictions (perfect nesting, affine subscripts,
recognised time indices) to :mod:`repro.frontend.analyze`, which can then
produce far better error messages than a grammar mismatch could.
"""

from __future__ import annotations

import re

from repro.frontend.ast import (
    CArrayRef,
    CAssign,
    CBinary,
    CCall,
    CDecl,
    CExpr,
    CFor,
    CName,
    CNumber,
    CProgram,
    CUnary,
    Location,
)
from repro.frontend.errors import StencilSyntaxError
from repro.frontend.lexer import Lexer, Token, tokenize

_NAME_COMMENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class Parser:
    """Parse one translation unit of the stencil dialect."""

    def __init__(self, source: str, filename: str | None = None) -> None:
        self.source = source
        self.filename = filename
        lexer = Lexer(source, filename)
        self.tokens = lexer.tokenize()
        self.name_hint = next(
            (c for c in lexer.comments if _NAME_COMMENT.match(c)), None
        )
        self.index = 0

    # -- token stream helpers ------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def _error(self, message: str, token: Token | None = None):
        token = token or self.current
        raise StencilSyntaxError(
            message, self.source, token.line, token.column, self.filename
        )

    def _expect(self, kind: str, what: str | None = None) -> Token:
        if self.current.kind != kind:
            expected = what or f"{kind!r}"
            self._error(f"expected {expected}, found {self.current.describe()}")
        return self._advance()

    def _loc(self, token: Token) -> Location:
        return Location(token.line, token.column)

    # -- grammar -------------------------------------------------------------

    def parse(self) -> CProgram:
        defines: dict[str, int] = {}
        decls: list[CDecl] = []
        time_loop: CFor | None = None
        while self.current.kind != "eof":
            token = self.current
            if token.kind == "define":
                name, value = token.value  # type: ignore[misc]
                if not isinstance(value, int):
                    self._error(
                        f"'#define {name}' must expand to an integer", token
                    )
                defines[str(name)] = int(value)
                self._advance()
            elif token.kind == "keyword" and token.value in ("float", "double", "int", "void"):
                decls.append(self._parse_decl())
            elif token.kind == "keyword" and token.value == "for" or token.kind == "pragma":
                if time_loop is not None:
                    self._error("only one outer time loop is supported", token)
                time_loop = self._parse_for()
            else:
                self._error(
                    f"expected '#define', a declaration or the time loop, "
                    f"found {token.describe()}"
                )
        if time_loop is None:
            last = self.tokens[-1]
            self._error("no time loop found (expected 'for (t = ...; ...)')", last)
        return CProgram(
            defines=defines,
            decls=tuple(decls),
            time_loop=time_loop,
            name_hint=self.name_hint,
        )

    def _parse_decl(self) -> CDecl:
        type_token = self._advance()
        name = self._expect("ident", "an array name")
        extents: list[CExpr] = []
        while self.current.kind == "[":
            self._advance()
            extents.append(self._parse_expr())
            self._expect("]")
        if not extents:
            self._error(f"declaration of {name.value!r} needs array extents", name)
        self._expect(";")
        return CDecl(
            str(type_token.value), str(name.value), tuple(extents), self._loc(type_token)
        )

    def _parse_for(self) -> CFor:
        ivdep = False
        while self.current.kind == "pragma":
            ivdep = True
            self._advance()
        for_token = self.current
        if not (for_token.kind == "keyword" and for_token.value == "for"):
            self._error("expected a 'for' loop after '#pragma ivdep'")
        self._advance()
        self._expect("(")
        var = self._expect("ident", "a loop variable")
        self._expect("=")
        lower = self._parse_expr()
        self._expect(";")
        cond_var = self._expect("ident", "the loop variable in the condition")
        if cond_var.value != var.value:
            self._error(
                f"loop condition tests {cond_var.value!r} but the loop "
                f"variable is {var.value!r}",
                cond_var,
            )
        self._expect("<", "'<' (only 'var < bound' conditions are supported)")
        upper = self._parse_expr()
        self._expect(";")
        self._parse_step(str(var.value))
        self._expect(")")
        body = self._parse_body()
        return CFor(
            var=str(var.value),
            lower=lower,
            upper=upper,
            body=tuple(body),
            ivdep=ivdep,
            loc=self._loc(for_token),
        )

    def _parse_step(self, var: str) -> None:
        name = self._expect("ident", "the loop variable in the increment")
        if name.value != var:
            self._error(
                f"increment updates {name.value!r} but the loop variable is {var!r}",
                name,
            )
        if self.current.kind == "++":
            self._advance()
            return
        if self.current.kind == "+=":
            self._advance()
            step = self._expect("number", "an integer step")
            if step.value != 1:
                self._error("only unit-stride loops are supported", step)
            return
        if self.current.kind == "=":
            self._advance()
            rhs_name = self._expect("ident", "the loop variable")
            if rhs_name.value != var:
                self._error(f"expected '{var} = {var} + 1'", rhs_name)
            self._expect("+")
            step = self._expect("number", "an integer step")
            if step.value != 1:
                self._error("only unit-stride loops are supported", step)
            return
        self._error(f"expected '{var}++', found {self.current.describe()}")

    def _parse_body(self) -> list[object]:
        if self.current.kind == "{":
            self._advance()
            statements: list[object] = []
            while self.current.kind != "}":
                if self.current.kind == "eof":
                    self._error("unterminated '{' block")
                statements.append(self._parse_statement())
            self._advance()
            return statements
        return [self._parse_statement()]

    def _parse_statement(self) -> object:
        token = self.current
        if token.kind == "pragma" or (token.kind == "keyword" and token.value == "for"):
            return self._parse_for()
        if token.kind == "ident":
            return self._parse_assign()
        self._error(
            f"expected a nested 'for' loop or an assignment, found {token.describe()}"
        )
        raise AssertionError("unreachable")

    def _parse_assign(self) -> CAssign:
        start = self.current
        target = self._parse_postfix()
        if not isinstance(target, CArrayRef):
            self._error("assignment target must be an array reference", start)
        self._expect("=", "'=' (compound assignments are not supported)")
        value = self._parse_expr()
        self._expect(";")
        return CAssign(target=target, value=value, loc=self._loc(start))

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> CExpr:
        return self._parse_additive()

    def _parse_additive(self) -> CExpr:
        left = self._parse_multiplicative()
        while self.current.kind in ("+", "-"):
            op = self._advance()
            right = self._parse_multiplicative()
            left = CBinary(self._loc(op), str(op.kind), left, right)
        return left

    def _parse_multiplicative(self) -> CExpr:
        left = self._parse_unary()
        while self.current.kind in ("*", "/", "%"):
            op = self._advance()
            right = self._parse_unary()
            left = CBinary(self._loc(op), str(op.kind), left, right)
        return left

    def _parse_unary(self) -> CExpr:
        if self.current.kind == "-":
            op = self._advance()
            operand = self._parse_unary()
            return CUnary(self._loc(op), "-", operand)
        if self.current.kind == "+":
            self._advance()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> CExpr:
        token = self.current
        if token.kind == "number":
            self._advance()
            return CNumber(
                self._loc(token), token.value, isinstance(token.value, float)
            )
        if token.kind == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect(")")
            return inner
        if token.kind == "ident":
            name = self._advance()
            loc = self._loc(name)
            if self.current.kind == "(":
                self._advance()
                args: list[CExpr] = []
                if self.current.kind != ")":
                    args.append(self._parse_expr())
                    while self.current.kind == ",":
                        self._advance()
                        args.append(self._parse_expr())
                self._expect(")")
                return CCall(loc, str(name.value), tuple(args))
            if self.current.kind == "[":
                subscripts: list[CExpr] = []
                while self.current.kind == "[":
                    self._advance()
                    subscripts.append(self._parse_expr())
                    self._expect("]")
                return CArrayRef(loc, str(name.value), tuple(subscripts))
            return CName(loc, str(name.value))
        self._error(f"expected an expression, found {token.describe()}")
        raise AssertionError("unreachable")


def parse_source(source: str, filename: str | None = None) -> CProgram:
    """Parse ``source`` into a :class:`CProgram` syntax tree."""
    return Parser(source, filename).parse()


__all__ = ["Parser", "parse_source", "tokenize"]
