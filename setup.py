"""Setuptools shim.

The offline evaluation environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs (which need ``bdist_wheel``) fail.
Keeping a classic ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` code path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Hybrid Hexagonal/Classical Tiling for GPUs' (CGO 2014)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.tuning": ["TUNING_baseline.json"]},
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["hexcc=repro.cli:main"]},
)
