#!/usr/bin/env python3
"""Compare hybrid tiling against the baseline stencil compilers (Tables 1/2).

Runs the full Table 1 / Table 2 comparison — all seven benchmark stencils at
the paper's problem sizes, hybrid tiling versus the PPCG, Par4All and Overtile
strategy models — on both GPUs and prints the tables side by side with the
numbers published in the paper.

Run with:  python examples/compare_compilers.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import PatusBaseline
from repro.experiments import format_comparison, run_comparison
from repro.gpu.device import GTX470, NVS5200M
from repro.stencils import get_stencil


def main() -> None:
    for device in (GTX470, NVS5200M):
        rows = run_comparison(device)
        print(format_comparison(rows, device))
        print()

    # The paper mentions Patus separately (its experimental CUDA back end only
    # handled the 3D laplacian and heat kernels); show the same support matrix.
    print("Patus (experimental CUDA back end):")
    patus = PatusBaseline()
    for name in ("laplacian_3d", "heat_3d", "heat_2d", "fdtd_2d"):
        outcome = patus.compile(get_stencil(name))
        if outcome.supported:
            report = outcome.performance(GTX470)
            print(f"  {name:<14} {report.gstencils_per_second:5.2f} GStencils/s on GTX 470")
        else:
            print(f"  {name:<14} unsupported ({outcome.failure_reason})")


if __name__ == "__main__":
    main()
