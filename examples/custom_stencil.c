/* edge_diffusion_2d */
/*
 * A user-written stencil the repro's library does not know about: one step
 * of edge-preserving diffusion.  The update averages the 4-neighbourhood,
 * weighted by an inverse gradient magnitude computed with sqrtf, so the
 * front end exercises float constants, intrinsic calls and a 5-point
 * double-resolved footprint.
 *
 * This is exactly the shape of input the paper's tool chain consumes
 * (Figure 1): an outer time loop, a perfectly nested spatial loop nest,
 * time-offset accesses, and #pragma ivdep on the innermost loop.
 */

#define T 64
#define N0 512
#define N1 512

float u[2][N0][N1];

for (t = 0; t < T; t++) {
  for (i = 1; i < N0 - 1; i++)
#pragma ivdep
    for (j = 1; j < N1 - 1; j++)
      u[t][i][j] = u[t-1][i][j] + 0.2f *
          (u[t-1][i+1][j] + u[t-1][i-1][j] + u[t-1][i][j+1] + u[t-1][i][j-1]
           - 4.0f * u[t-1][i][j])
          / sqrtf(1.0f + (u[t-1][i+1][j] - u[t-1][i-1][j])
                       * (u[t-1][i+1][j] - u[t-1][i-1][j]));
}
