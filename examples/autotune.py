#!/usr/bin/env python3
"""Empirical autotuning: beat (or confirm) the §3.7 model with a search.

The paper selects tile sizes with the closed-form load-to-compute model;
its auto-tuning competitors (Patus) sometimes win by measuring instead.
``repro.tuning`` closes that loop:

* derive the legal candidate space from the model's own constraints,
* spend a search budget (grid / random / hill-climbing) scoring candidates,
* record the winner in a persistent database that
  ``Session.run(tuned=True)`` / ``hexcc compile --tuned`` apply
  transparently.

Run with:  python examples/autotune.py
"""

from __future__ import annotations

import sys
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Session
from repro.cache import DiskCache
from repro.stencils import get_stencil
from repro.tuning import CandidateSpace, TuningDatabase, tune
from repro.model.preprocess import canonicalize


def show_space() -> None:
    print("=== the candidate space (derived from the §3.7 constraints) ===")
    canonical = canonicalize(get_stencil("heat_3d"))
    space = CandidateSpace(canonical)
    rejections = dict(space.rejections)
    print(f"heat_3d: {len(space)} legal candidates; pruned: "
          f"shared-memory={rejections['shared_memory_overflow']}, "
          f"legality={rejections['legality']}, "
          f"occupancy={rejections['occupancy_floor']}\n")


def search_and_apply(workdir: Path) -> None:
    print("=== random search vs the model selection (model objective) ===")
    program = get_stencil("jacobi_2d")
    cache = DiskCache(workdir / "cache")
    db = TuningDatabase()
    result = tune(
        program,
        strategy="random",
        objective="model",
        budget=24,
        seed=0,
        disk_cache=cache,
        db=db,
    )
    print(result.describe())

    db_path = db.save(workdir / "tuning.json")
    print(f"\nrecorded in {db_path.name}; compiling with tuned=True applies it:")
    session = Session(tuning_db=TuningDatabase.load(db_path))
    run = session.run(program, stop_after="tiling", tuned=True)
    plan = run.artifact("tiling")
    print(f"  tiling stage used h={plan.sizes.height}, "
          f"widths={plan.sizes.widths} "
          f"(from the database: {run.tuned_entry is not None})")

    print("\nre-running the identical sweep replays cached trials:")
    again = tune(
        program,
        strategy="random",
        objective="model",
        budget=24,
        seed=0,
        disk_cache=cache,
    )
    print(f"  warm sweep wall time: {again.wall_s * 1e3:.0f} ms "
          f"(cold was {result.wall_s * 1e3:.0f} ms)")


def main() -> None:
    show_space()
    with TemporaryDirectory() as workdir:
        search_and_apply(Path(workdir))


if __name__ == "__main__":
    main()
