#!/usr/bin/env python3
"""Hybrid tiling of a multi-statement stencil (FDTD 2D).

FDTD updates three coupled fields (ex, ey, hz) per time step, which exercises
the parts of the algorithm that single-statement Jacobi kernels do not:

* the canonical schedule interleaves the statements on the logical time axis
  (``l = 3t + i``, Section 3.2);
* the tile height must satisfy ``(h + 1) mod 3 == 0`` so every tile starts
  with the same statement (Section 3.3.2);
* dependences flow both from the previous time step (ex/ey read hz) and from
  earlier statements of the same step (hz reads the just-updated ex/ey).

The example validates the schedule, simulates it functionally against the
reference and shows the generated kernels.

Run with:  python examples/fdtd_multi_statement.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import HybridCompiler
from repro.gpu.device import GTX470
from repro.model.dependences import compute_dependences
from repro.stencils import get_stencil
from repro.tiling.hybrid import TileSizes


def main() -> None:
    small = get_stencil("fdtd_2d", sizes=(18, 16), steps=9)

    print("dependences of the canonicalised program:")
    for dependence in compute_dependences(small):
        print(f"  {dependence}")
    print()

    compiler = HybridCompiler()
    compiled = compiler.compile(small, tile_sizes=TileSizes.of(2, 3, 6))
    print(compiled.describe())
    print()
    print(f"validation: {compiled.validate()}")
    simulation = compiled.simulate_and_check()
    print(f"functional simulation matches the reference on all three fields "
          f"({simulation.tiles_executed} tiles executed)\n")

    # Performance at paper scale, with the statement-aligned tile height h=5
    # (h+1 = 6 is a multiple of 3 statements).
    full = compiler.compile(get_stencil("fdtd_2d"), tile_sizes=TileSizes.of(5, 4, 64))
    report = full.estimate_performance(GTX470)
    print(f"paper-scale estimate on {GTX470.name}: {report.summary()}")
    print()
    print("generated phase-0 kernel (head):")
    kernel_lines = [
        line for line in full.cuda_source.splitlines() if "fdtd_2d_phase0" in line or True
    ]
    print("\n".join(full.cuda_source.splitlines()[8:40]))


if __name__ == "__main__":
    main()
