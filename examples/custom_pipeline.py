#!/usr/bin/env python3
"""Drive the staged pipeline API: prefixes, injection, strategies, timings.

Everything the monolithic ``HybridCompiler.compile()`` hides, step by step,
using only :mod:`repro.api`:

1. run a pipeline *prefix* (``stop_after="tiling"``) and inspect the typed
   :class:`TilingPlan` artifact;
2. re-enter the pipeline with a *hand-modified* tiling plan (a different
   hexagon height) via artifact injection and compare the generated CUDA;
3. select tiling strategies by name — the paper's ``hybrid`` scheme versus
   the ``diamond`` comparison strategy of Section 5;
4. read the per-pass instrumentation events (wall time, cache provenance,
   artifact counters) that every run records.

Run with:  python examples/custom_pipeline.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Session, TileSizes, TilingPlan, get_stencil
from repro.tiling.hybrid import HybridTiling


def main() -> None:
    session = Session()  # GTX 470, hybrid strategy, no disk cache
    program = get_stencil("jacobi_2d", sizes=(24, 24), steps=12)

    # 1. Stop after the tiling stage and look at the typed artifact.
    print("=== pipeline prefix: stop_after='tiling' ===")
    prefix = session.run(program, tile_sizes=TileSizes.of(2, 3, 8),
                         stop_after="tiling")
    plan = prefix.artifact("tiling")
    print(f"stages run: {', '.join(prefix.stages_run)}")
    for name, value in plan.summary().items():
        print(f"  {name:<24} {value}")
    print()

    # 2. Hand-modify the plan (taller hexagons) and re-enter the pipeline.
    print("=== artifact injection: re-enter with a modified TilingPlan ===")
    canonical = prefix.artifact("canonicalize").canonical
    taller = TileSizes.of(3, 3, 8)
    modified = TilingPlan(
        strategy="hybrid",
        sizes=taller,
        tiling=HybridTiling(canonical, taller),
        supports_codegen=True,
    )
    injected = session.run(program, inject={"tiling": modified})
    baseline = session.run(program, tile_sizes=TileSizes.of(2, 3, 8))
    print(f"baseline tiles {baseline.artifact('tiling').sizes}, "
          f"injected tiles {injected.artifact('tiling').sizes}")
    same = injected.artifact("codegen").cuda_source == \
        baseline.artifact("codegen").cuda_source
    print(f"generated CUDA identical: {same} (expected: False — the tiling "
          "changed)")
    result = injected.result()
    result.simulate_and_check()
    print("injected pipeline validates and simulates correctly")
    print()

    # 3. Strategies are selected by name, not by class wiring.
    print("=== strategy registry: hybrid vs diamond peak width ===")
    for strategy in ("hybrid", "diamond"):
        run = session.run(program, tile_sizes=TileSizes.of(2, 3, 8),
                          strategy=strategy, stop_after="tiling")
        details = run.artifact("tiling").details or {}
        print(f"  {strategy:<9} peak width {details.get('peak_width')}"
              f"  concurrent start: {details.get('concurrent_start')}")
    print()

    # 4. Per-pass instrumentation of a full run.
    print("=== per-pass instrumentation events ===")
    full = session.run(program, tile_sizes=TileSizes.of(2, 3, 8),
                       stop_after="analysis")
    for event in full.events:
        print(f"  {event.describe()}")
    report = full.artifact("analysis").report
    print(f"predicted: {report.gstencils_per_second:.2f} GStencils/s "
          f"({report.bound_by}-bound)")


if __name__ == "__main__":
    main()
