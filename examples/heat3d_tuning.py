#!/usr/bin/env python3
"""Tile-size selection and the shared-memory optimisation ladder for heat 3D.

Reproduces, at example scale, the two analyses of Section 6.2:

* the load-to-compute model of Section 3.7 sweeping tile sizes under the
  48 KB shared-memory budget, and
* the optimisation ladder (a)-(f) of Table 4 showing how shared memory,
  interleaved copy-out, aligned loads and inter-tile reuse build on each
  other.

Run with:  python examples/heat3d_tuning.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import HybridCompiler, table4_configurations
from repro.gpu.device import GTX470, NVS5200M
from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tiling.hybrid import TileSizes
from repro.tiling.tile_size import TileSizeModel, select_tile_sizes


def tile_size_sweep() -> None:
    print("=== Section 3.7: load-to-compute driven tile-size selection ===")
    canonical = canonicalize(get_stencil("heat_3d"))
    model = TileSizeModel(canonical)
    print(f"{'h':>3} {'w0':>3} {'w1':>3} {'w2':>4} {'iters/tile':>11} "
          f"{'loads/tile':>11} {'ratio':>7} {'shared KB':>10}")
    for h in (1, 2, 3):
        for w0 in (3, 7):
            for w1 in (5, 10):
                sizes = TileSizes.of(h, w0, w1, 32)
                estimate = model.estimate(sizes)
                marker = " *" if estimate.shared_memory_bytes > 48 * 1024 else ""
                print(
                    f"{h:>3} {w0:>3} {w1:>3} {32:>4} {estimate.iterations:>11} "
                    f"{estimate.loads:>11} {estimate.load_to_compute:>7.3f} "
                    f"{estimate.shared_memory_bytes / 1024:>10.1f}{marker}"
                )
    best = select_tile_sizes(canonical, shared_memory_limit=48 * 1024)
    print(f"\nselected: {best.sizes} with load-to-compute ratio "
          f"{best.load_to_compute:.3f} ({best.shared_memory_bytes / 1024:.1f} KB shared)")
    print("(* = exceeds the 48 KB shared-memory budget and is rejected)\n")


def optimisation_ladder() -> None:
    print("=== Section 6.2 / Table 4: the optimisation ladder on heat 3D ===")
    program = get_stencil("heat_3d")
    sizes = TileSizes.of(2, 7, 10, 32)
    for device in (NVS5200M, GTX470):
        compiler = HybridCompiler(device)
        print(f"\n{device}")
        for label, config in table4_configurations().items():
            compiled = compiler.compile(program, tile_sizes=sizes, config=config)
            report = compiled.estimate_performance(device)
            counters = compiled.execution_estimate(device).counters
            print(
                f"  ({label}) {report.gflops:7.1f} GFLOPS  "
                f"{report.gstencils_per_second:5.2f} GStencils/s  "
                f"bound by {report.bound_by:<14} "
                f"gld_eff {100 * counters.gld_efficiency:5.1f}%"
            )


def main() -> None:
    tile_size_sweep()
    optimisation_ladder()


if __name__ == "__main__":
    main()
