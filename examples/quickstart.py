#!/usr/bin/env python3
"""Quickstart: compile the Figure 1 Jacobi 2D stencil with hybrid tiling.

The example walks the whole pipeline on a small problem instance:

1. get the stencil program (the paper's Figure 1 kernel),
2. compile it with hybrid hexagonal/classical tiling,
3. validate the schedule exhaustively (coverage, legality, uniform tiles),
4. run the functional GPU simulator and compare with the NumPy reference,
5. print the generated CUDA code's core-loop PTX summary (Figure 2) and the
   predicted performance on the two GPUs of the paper.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import HybridCompiler
from repro.gpu.device import GTX470, NVS5200M
from repro.stencils import get_stencil
from repro.tiling.hybrid import TileSizes


def main() -> None:
    # A small instance so the exhaustive validation and the functional
    # simulation finish in a few seconds; the tiling code is identical for the
    # full 3072^2 x 512 problem of the paper.
    program = get_stencil("jacobi_2d", sizes=(24, 24), steps=12)
    print("input program (Figure 1):")
    print(program.c_source())

    compiler = HybridCompiler()
    compiled = compiler.compile(program, tile_sizes=TileSizes.of(3, 3, 8))
    print(compiled.describe())
    print()

    report = compiled.validate()
    print(f"schedule validation: {report}")

    simulation = compiled.simulate_and_check()
    print(
        f"functional simulation matches the reference "
        f"({simulation.tiles_executed} tiles, {simulation.full_tiles} full)"
    )
    print()

    ptx = compiled.core_ptx()
    print("core-loop pseudo-PTX (compare with Figure 2):")
    print(ptx.text)
    print(f"-> {ptx.shared_loads} shared loads, {ptx.shared_stores} store, "
          f"{ptx.arithmetic} arithmetic ops, {ptx.registers_reused} values reused\n")

    # Performance prediction at the paper's problem size.
    full_program = get_stencil("jacobi_2d")
    full = compiler.compile(full_program, tile_sizes=TileSizes.of(3, 4, 64))
    for device in (GTX470, NVS5200M):
        print(full.estimate_performance(device).summary())

    print("\nfirst lines of the generated CUDA code:")
    print("\n".join(compiled.cuda_source.splitlines()[:30]))


if __name__ == "__main__":
    main()
