#!/usr/bin/env python3
"""Compile a user-written C stencil with the front end.

The example demonstrates the whole "bring your own stencil" workflow on
``examples/custom_stencil.c``:

1. parse the C source into a :class:`StencilProgram` with
   :func:`repro.frontend.parse_stencil`,
2. inspect the recovered structure (statements, loads, flops, margins),
3. register it so ``get_stencil``/the CLI can build it by name,
4. compile a small instance, validate the schedule and simulate it,
5. print the predicted performance at the source's full problem size.

Run with:  python examples/compile_custom.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (
    HybridCompiler,
    get_stencil,
    parse_stencil,
    register_from_source,
    unregister,
)


def main() -> None:
    source = (Path(__file__).resolve().parent / "custom_stencil.c").read_text()

    # 1. parse — the program keeps the original source (program.c_source()).
    program = parse_stencil(source)
    print(f"parsed {program.name}: {program.ndim}-D, sizes={program.sizes}, "
          f"steps={program.time_steps}")
    for statement in program.statements:
        print(f"  {statement.name}: writes {statement.target}, "
              f"{statement.loads} loads, {statement.flops} flops, "
              f"margins {statement.lower_margin}/{statement.upper_margin}")
    print()

    # 2. register it so the rest of the tool chain can build it by name.
    register_from_source(source, replace=True)
    small = get_stencil(program.name, sizes=(20, 20), steps=8)

    # 3. compile, validate and simulate the small instance.
    compiler = HybridCompiler()
    compiled = compiler.compile(small)
    print(compiled.describe())
    print(f"schedule validation: {compiled.validate()}")
    compiled.simulate_and_check()
    print("functional simulation matches the NumPy reference")
    print()

    # 4. performance prediction at the full size declared in the source.
    full = compiler.compile(program)
    print(full.estimate_performance().summary())

    unregister(program.name)


if __name__ == "__main__":
    main()
