"""Table 3: characteristics of the benchmark stencils (loads, flops, sizes)."""

from conftest import run_once

from repro.experiments import format_table3, table3_characteristics

# Straight from Table 3 of the paper.
EXPECTED = {
    ("laplacian_2d", "S0"): (5, 6),
    ("heat_2d", "S0"): (9, 9),
    ("gradient_2d", "S0"): (5, 15),
    ("fdtd_2d", "Sey"): (3, 3),
    ("fdtd_2d", "Sex"): (3, 3),
    ("fdtd_2d", "Shz"): (5, 5),
    ("laplacian_3d", "S0"): (7, 8),
    ("heat_3d", "S0"): (27, 27),
    ("gradient_3d", "S0"): (7, 20),
}


def test_table3_characteristics(benchmark):
    rows = run_once(benchmark, table3_characteristics)
    print()
    print(format_table3(rows))

    assert len(rows) == len(EXPECTED)
    for row in rows:
        loads, flops = EXPECTED[(row["benchmark"], row["statement"])]
        assert row["loads"] == loads
        assert row["flops"] == flops
        if row["benchmark"].endswith("3d"):
            assert row["data_size"] == "384x384x384" and row["steps"] == 128
        else:
            assert row["data_size"] == "3072x3072" and row["steps"] == 512
