"""Ablation: hexagonal versus diamond tiling (Sections 2 and 5).

The paper argues hexagonal tiles are preferable to diamond tiles on GPUs
because (i) their peak width is adjustable (thread-level parallelism), and
(ii) every full hexagonal tile contains the same number of integer points
(no divergence between blocks).  This bench quantifies both claims.
"""

from fractions import Fraction

from conftest import run_once

from repro.tiling.cone import DependenceCone
from repro.tiling.diamond import DiamondTiling
from repro.tiling.hex_schedule import HexagonalSchedule
from repro.tiling.hexagon import HexagonalTileShape


def _measure():
    cone = DependenceCone(Fraction(1), Fraction(1))
    hexagon = HexagonalTileShape(cone, 2, 3)
    schedule = HexagonalSchedule(hexagon)

    hex_counts = set()
    counts: dict[tuple, int] = {}
    extent_l, extent_s = 72, 96
    for l in range(extent_l):
        for s0 in range(extent_s):
            a = schedule.assign(l, s0)
            counts[(a.phase, a.time_tile, a.space_tile)] = (
                counts.get((a.phase, a.time_tile, a.space_tile), 0) + 1
            )
    for key, count in counts.items():
        points = list(schedule.tile_points(*key))
        if all(0 <= l < extent_l and 0 <= s < extent_s for l, s in points):
            hex_counts.add(count)

    diamond = DiamondTiling(5)
    diamond_counts = set(diamond.interior_tile_counts(60, 60))

    return {
        "hexagon_counts": sorted(hex_counts),
        "diamond_counts": sorted(diamond_counts),
        "hexagon_peak": hexagon.peak_width(),
        "hexagon_peak_wide": HexagonalTileShape(cone, 2, 9).peak_width(),
        "diamond_peak": diamond.peak_width(),
    }


def test_diamond_vs_hexagonal(benchmark):
    data = run_once(benchmark, _measure)
    print()
    print(f"full hexagonal tile point counts : {data['hexagon_counts']}")
    print(f"full diamond tile point counts   : {data['diamond_counts']}")
    print(f"hexagon peak width (w0=3 / w0=9) : {data['hexagon_peak']} / {data['hexagon_peak_wide']}")
    print(f"diamond peak width               : {data['diamond_peak']}")

    # Claim (ii): all full hexagonal tiles are identical, diamond tiles are not.
    assert len(data["hexagon_counts"]) == 1
    assert len(data["diamond_counts"]) > 1
    # Claim (i): the hexagonal peak is adjustable (and wider), the diamond's is not.
    assert data["hexagon_peak"] == 4
    assert data["hexagon_peak_wide"] == 10
    assert data["diamond_peak"] <= 2
