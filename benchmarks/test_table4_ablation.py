"""Table 4: the shared-memory optimisation ablation (heat 3D, both GPUs)."""

from conftest import run_once

from repro.experiments import format_table4, run_ablation
from repro.gpu.device import GTX470, NVS5200M


def test_table4_ablation(benchmark):
    rows = run_once(benchmark, run_ablation, "heat_3d", (NVS5200M, GTX470))
    print()
    print(format_table4(rows))

    by_device = {}
    for row in rows:
        by_device.setdefault(row.device, {})[row.configuration] = row.gflops

    for device, gflops in by_device.items():
        # The full configuration (f) is the best one, as in the paper.
        assert gflops["f"] == max(gflops.values()), device
        # Dynamic inter-tile reuse (f) beats the bank-conflicted static one (e).
        assert gflops["f"] > gflops["e"], device
        # Shared memory + interleaving + alignment + reuse beats plain shared
        # memory by a wide margin.
        assert gflops["f"] > 1.15 * gflops["b"], device
