"""Section 3.7: the load-to-compute tile-size model and its closed form.

Also covers the running-text claims of Section 6.1: the selected tile sizes
execute 8 time steps per tile for the 2D kernels and 4 for the 3D kernels,
and the Table 4 configuration fits the 48 KB of shared memory.
"""

from conftest import run_once

from repro.experiments.paper_data import PAPER_TILE_SIZES
from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tiling.hybrid import TileSizes
from repro.tiling.tile_size import TileSizeModel, select_tile_sizes


def _sweep():
    canonical = canonicalize(get_stencil("heat_3d"))
    model = TileSizeModel(canonical)
    rows = []
    for h in (1, 2, 3):
        for w0 in (3, 7, 11):
            sizes = TileSizes.of(h, w0, 10, 32)
            estimate = model.estimate(sizes)
            rows.append(
                {
                    "h": h,
                    "w0": w0,
                    "iterations": estimate.iterations,
                    "closed_form": model.closed_form_iterations_3d(sizes),
                    "loads": estimate.loads,
                    "ratio": estimate.load_to_compute,
                    "shared_bytes": estimate.shared_memory_bytes,
                }
            )
    best = select_tile_sizes(canonical, shared_memory_limit=48 * 1024)
    return rows, best


def test_tile_size_model(benchmark):
    rows, best = run_once(benchmark, _sweep)
    print()
    print(f"{'h':>3}{'w0':>4}{'iters':>9}{'loads':>9}{'ratio':>8}{'shared':>9}")
    for row in rows:
        print(
            f"{row['h']:>3}{row['w0']:>4}{row['iterations']:>9}{row['loads']:>9}"
            f"{row['ratio']:>8.3f}{row['shared_bytes']:>9}"
        )
    print(f"selected by the search: {best.sizes} (ratio {best.load_to_compute:.3f})")

    # The exact enumeration matches the paper's closed form everywhere.
    for row in rows:
        assert row["iterations"] == row["closed_form"]
    # Larger tiles improve the load-to-compute ratio (until shared memory runs out).
    assert rows[-1]["ratio"] < rows[0]["ratio"]
    # The search result respects the hardware constraints of Section 3.7.
    assert best.shared_memory_bytes <= 48 * 1024
    assert best.sizes.widths[-1] % 32 == 0

    # Section 6.1: the paper's tile-size choices give 8 time steps per tile in
    # 2D and 4 in 3D; Table 4's heat-3D configuration fits in shared memory.
    assert 2 * PAPER_TILE_SIZES["heat_2d"].height + 2 == 8
    assert 2 * PAPER_TILE_SIZES["laplacian_3d"].height + 2 == 4
    model = TileSizeModel(canonicalize(get_stencil("heat_3d")))
    assert model.shared_memory_bytes(PAPER_TILE_SIZES["heat_3d"]) <= 48 * 1024
