"""Figures 2-6: the paper's illustrative figures, regenerated as data.

* Figure 2 — the tuned PTX core block of the Jacobi 2D kernel;
* Figure 3 — the opposite dependence cone of the Section 3.3.2 example;
* Figure 4 — the hexagonal tile shape for h=2, w0=3;
* Figure 5 — the two-phase tiling pattern and its parallel wavefronts;
* Figure 6 — the closed-form hybrid schedule for ±1 dependence distances.
"""

from fractions import Fraction

from conftest import run_once

from repro.experiments import (
    figure2_core_ptx,
    figure3_dependence_cone,
    figure4_hexagon,
    figure5_tiling_pattern,
    figure6_schedule,
)


def test_figure2_ptx_core(benchmark):
    summary = run_once(benchmark, figure2_core_ptx)
    print()
    print(summary.text)
    # "only 3 shared memory loads and 1 store for 5 compute instructions,
    #  ... 2 of the 5 values in flight are being reused in registers"
    assert summary.shared_loads == 3
    assert summary.shared_stores == 1
    assert summary.arithmetic == 5
    assert summary.registers_reused == 2


def test_figure3_dependence_cone(benchmark):
    data = run_once(benchmark, figure3_dependence_cone)
    print()
    print(f"distance vectors: {data['distance_vectors']}")
    print(f"delta0 = {data['delta0']}, delta1 = {data['delta1']}")
    assert set(map(tuple, data["distance_vectors"])) == {(1, -2), (2, 2)}
    assert data["delta0"] == Fraction(1)
    assert data["delta1"] == Fraction(2)
    assert data["delta0"] == data["delta0_lp"]
    assert data["delta1"] == data["delta1_lp"]


def test_figure4_hexagon_shape(benchmark):
    data = run_once(benchmark, figure4_hexagon)
    print()
    print(data["ascii"])
    assert data["points"] == 36            # 2(1+2h+h²+w0(h+1)) for h=2, w0=3
    assert data["peak_width"] == 4          # w0 + 1
    assert data["max_width"] == 8           # w0 + 1 + ⌊δ0h⌋ + ⌊δ1h⌋
    assert data["time_period"] == 6         # 2h + 2
    assert data["space_period"] == 12       # 2w0 + 2 + ⌊δ0h⌋ + ⌊δ1h⌋


def test_figure5_tiling_pattern(benchmark):
    data = run_once(benchmark, figure5_tiling_pattern)
    print()
    print(
        f"blue tiles: {data['blue_tiles']}, green tiles: {data['green_tiles']}, "
        f"points per full tile: {data['points_per_full_tile']}"
    )
    assert data["blue_tiles"] > 0 and data["green_tiles"] > 0
    # Tiles of the same phase form parallel wavefronts with several tiles each.
    assert max(data["parallel_tiles_per_wavefront"].values()) >= 3


def test_figure6_schedule_form(benchmark):
    expressions = run_once(benchmark, figure6_schedule)
    print()
    for name in sorted(expressions):
        print(f"{name:>18} = {expressions[name]}")
    # The closed form of Figure 6 (phase 0, δ = 1): T = floord(l + h + 1, 2h+2).
    assert "floord" in expressions["phase0_T"]
    assert "phase0_S1" in expressions and "phase1_S2" in expressions
    # Intra-tile coordinates are modulo expressions.
    assert "%" in expressions["phase0_t_local"]
