"""Table 5: performance counters of the heat 3D ablation configurations."""

from conftest import run_once

from repro.experiments import format_table5, run_counter_ablation
from repro.gpu.device import GTX470


def test_table5_counters(benchmark):
    rows = run_once(benchmark, run_counter_ablation, "heat_3d", GTX470)
    print()
    print(format_table5(rows))

    by_config = {row["configuration"]: row for row in rows}

    # (a) -> (b): explicit shared memory removes the bulk of the global load
    # instructions (a factor ~20 in the paper, >10 here).
    assert by_config["a"]["gld_inst_32bit"] > 10 * by_config["b"]["gld_inst_32bit"]
    # (c) -> (d): aligned loads reduce DRAM read transactions.
    assert by_config["d"]["dram_read_transactions"] < by_config["c"]["dram_read_transactions"]
    # (d) -> (e)/(f): inter-tile reuse reaches 100% global load efficiency and
    # the lowest DRAM traffic of all configurations.
    for label in ("e", "f"):
        assert by_config[label]["gld_efficiency_percent"] >= 99.0
        assert (
            by_config[label]["dram_read_transactions"]
            <= by_config["d"]["dram_read_transactions"]
        )
    # The static shared mapping (e) causes bank conflicts, the dynamic one not.
    assert by_config["e"]["shared_loads_per_request"] >= 1.5
    assert by_config["f"]["shared_loads_per_request"] <= 1.1
