"""Compiler-infrastructure benchmarks (not from the paper).

These measure the cost of the reproduction's own machinery — schedule
construction, validation and functional simulation — so regressions in the
polyhedral substrate show up here.
"""

from repro.compiler import HybridCompiler
from repro.model.preprocess import canonicalize
from repro.stencils import get_stencil
from repro.tiling.hybrid import HybridTiling, TileSizes
from repro.tiling.validate import validate_hybrid_tiling


def test_compile_heat3d_paper_scale(benchmark):
    """Building the hybrid schedule for the full-size heat 3D problem."""
    program = get_stencil("heat_3d")
    compiler = HybridCompiler()

    result = benchmark(
        lambda: compiler.compile(program, tile_sizes=TileSizes.of(2, 7, 10, 32))
    )
    assert result.shared_plan.shared_bytes_per_block <= 48 * 1024


def test_validate_small_jacobi(benchmark):
    """Exhaustive legality validation of a small Jacobi 2D tiling."""
    program = get_stencil("jacobi_2d", sizes=(18, 16), steps=8)
    tiling = HybridTiling(canonicalize(program), TileSizes.of(1, 2, 4))

    report = benchmark(lambda: validate_hybrid_tiling(tiling))
    assert report.ok


def test_functional_simulation_small_heat2d(benchmark):
    """Functional (interpreted) execution of a small heat 2D problem."""
    program = get_stencil("heat_2d", sizes=(16, 16), steps=6)
    compiler = HybridCompiler()
    compiled = compiler.compile(program, tile_sizes=TileSizes.of(2, 2, 5))
    reference = program.run_reference(seed=0)

    result = benchmark.pedantic(
        lambda: compiled.simulate(seed=0), rounds=1, iterations=1
    )
    assert result.matches_reference(reference)
