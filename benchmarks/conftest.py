"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through
pytest-benchmark.  The expensive experiment functions are executed once per
benchmark (``rounds=1``) because they are analytic (deterministic) rather than
noisy measurements; pytest-benchmark still records their running time so the
harness doubles as a performance regression check for the compiler itself.

Each run additionally persists the measured timings as a schema-versioned
``BENCH_pytest.json`` (see :mod:`repro.bench.schema`) next to this file, so
the pytest-benchmark numbers can be diffed across commits with
``python -m repro.bench.compare`` exactly like the ``hexcc bench`` reports.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the benchmarks without installing the package.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def pytest_sessionfinish(session, exitstatus):
    """Persist the collected pytest-benchmark timings as BENCH_pytest.json."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    from repro.bench.schema import make_report, save_report, timing_entry

    stencils = {}
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        stencils[bench.name] = {
            "wall_s": timing_entry(list(stats.data) or [stats.median]),
            "counters": {},
            "meta": {"fullname": bench.fullname, "group": bench.group},
        }
    if not stencils:
        return
    report = make_report({"pytest": stencils}, quick=False, repeats=1)
    save_report(report, Path(__file__).parent / "BENCH_pytest.json")
