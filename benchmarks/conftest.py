"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through
pytest-benchmark.  The expensive experiment functions are executed once per
benchmark (``rounds=1``) because they are analytic (deterministic) rather than
noisy measurements; pytest-benchmark still records their running time so the
harness doubles as a performance regression check for the compiler itself.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the benchmarks without installing the package.
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
