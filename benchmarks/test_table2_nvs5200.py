"""Table 2: GStencils/second and speedups on the NVS 5200M (mobile GPU)."""

from conftest import run_once

from repro.experiments import format_comparison, run_comparison
from repro.gpu.device import NVS5200M


def test_table2_nvs5200(benchmark):
    rows = run_once(benchmark, run_comparison, NVS5200M)
    print()
    print(format_comparison(rows, NVS5200M))

    for row in rows:
        if row.tool == "hybrid":
            assert row.speedup_over_ppcg is not None and row.speedup_over_ppcg > 1.0

    # The mobile part is bandwidth starved: every tool is slower than on the
    # GTX 470 (cross-checked in the GTX benchmark), and the hybrid speedups
    # over PPCG are at least as large as on the desktop part for the
    # bandwidth-bound 2D kernels — the pattern Table 2 shows.
    hybrid = {r.benchmark: r for r in rows if r.tool == "hybrid"}
    assert hybrid["heat_2d"].speedup_over_ppcg > 1.5
