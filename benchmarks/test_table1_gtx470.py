"""Table 1: GStencils/second and speedups on the GTX 470.

Regenerates the comparison of hybrid hexagonal/classical tiling against PPCG,
Par4All and Overtile on all seven benchmarks at the paper's problem sizes,
prints the table next to the paper's numbers, and asserts the headline shape:
hybrid achieves a speedup over PPCG on every benchmark and is the (near-)best
tool overall.
"""

from conftest import run_once

from repro.experiments import format_comparison, run_comparison
from repro.gpu.device import GTX470


def test_table1_gtx470(benchmark):
    rows = run_once(benchmark, run_comparison, GTX470)
    print()
    print(format_comparison(rows, GTX470))

    hybrid_rows = [row for row in rows if row.tool == "hybrid"]
    assert len(hybrid_rows) == 7
    for row in hybrid_rows:
        assert row.speedup_over_ppcg is not None and row.speedup_over_ppcg > 1.0, (
            f"hybrid does not beat PPCG on {row.benchmark}"
        )

    # Par4All fails on fdtd-2d exactly as in the paper.
    fdtd = next(r for r in rows if r.tool == "par4all" and r.benchmark == "fdtd_2d")
    assert fdtd.gstencils_per_second is None
